package subcache

// Benchmarks for the extension experiments (DESIGN.md sections 2.2/2.3
// substrates and §3.1 further studies): instruction buffers, the RISC II
// instruction cache, split I/D caches, and write-policy traffic.

import (
	"testing"

	"subcache/internal/busim"
	"subcache/internal/cache"
	"subcache/internal/ibuffer"
	"subcache/internal/riscii"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func pdpWords(b *testing.B, name string, n int) []trace.Ref {
	b.Helper()
	prof, ok := synth.ProfileByName(name)
	if !ok {
		b.Fatalf("workload %s missing", name)
	}
	refs, err := synth.Generate(prof, n)
	if err != nil {
		b.Fatal(err)
	}
	words, err := trace.SplitAll(trace.NewSliceSource(refs), 2)
	if err != nil {
		b.Fatal(err)
	}
	return words
}

// BenchmarkExtensionIBuffer drives both §2.2 buffer archetypes.
func BenchmarkExtensionIBuffer(b *testing.B) {
	words := pdpWords(b, "ED", benchRefs)
	b.Run("sequential", func(b *testing.B) {
		var hit float64
		for i := 0; i < b.N; i++ {
			buf, err := ibuffer.NewSequential(2)
			if err != nil {
				b.Fatal(err)
			}
			if err := ibuffer.Run(buf, trace.NewSliceSource(words)); err != nil {
				b.Fatal(err)
			}
			hit = buf.Stats().HitRatio()
		}
		b.ReportMetric(hit, "hit-ratio")
	})
	b.Run("loop4x128", func(b *testing.B) {
		var traffic float64
		for i := 0; i < b.N; i++ {
			buf, err := ibuffer.NewLoop(4, 128, 2)
			if err != nil {
				b.Fatal(err)
			}
			if err := ibuffer.Run(buf, trace.NewSliceSource(words)); err != nil {
				b.Fatal(err)
			}
			traffic = buf.Stats().TrafficRatio()
		}
		b.ReportMetric(traffic, "traffic")
	})
}

// BenchmarkExtensionRISCII runs the §2.3 chip study: the 512-byte
// direct-mapped cache with remote PC and code compaction.
func BenchmarkExtensionRISCII(b *testing.B) {
	refs, err := synth.Generate(riscii.Workload(11), benchRefs)
	if err != nil {
		b.Fatal(err)
	}
	comp, err := riscii.NewCompactor(0x1000, riscii.Workload(11).CodeSize+64, 4, 0.4, 11)
	if err != nil {
		b.Fatal(err)
	}
	var plain, compacted riscii.Result
	for i := 0; i < b.N; i++ {
		rpc, err := riscii.NewRemotePC(4)
		if err != nil {
			b.Fatal(err)
		}
		plain, err = riscii.Evaluate(riscii.ICacheConfig{}, trace.NewSliceSource(refs), nil, rpc)
		if err != nil {
			b.Fatal(err)
		}
		compacted, err = riscii.Evaluate(riscii.ICacheConfig{}, trace.NewSliceSource(refs), comp, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plain.MissRatio, "miss")
	b.ReportMetric(compacted.MissRatio, "miss-compacted")
	b.ReportMetric(plain.PredictionAccuracy, "rpc-accuracy")
}

// BenchmarkExtensionSplitCache compares unified and split I/D caches.
func BenchmarkExtensionSplitCache(b *testing.B) {
	words := pdpWords(b, "ED", benchRefs)
	mk := func(net int) *cache.Cache {
		c, err := cache.New(cache.Config{NetSize: net, BlockSize: 16,
			SubBlockSize: 8, Assoc: 4, WordSize: 2})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	var unified, split float64
	for i := 0; i < b.N; i++ {
		u := mk(512)
		ic, dc := mk(256), mk(256)
		for _, r := range words {
			u.Access(r)
			if r.Kind == trace.IFetch {
				ic.Access(r)
			} else {
				dc.Access(r)
			}
		}
		var s cache.Stats
		s.Add(ic.Stats())
		s.Add(dc.Stats())
		unified, split = u.Stats().MissRatio(), s.MissRatio()
	}
	b.ReportMetric(unified, "unified-miss")
	b.ReportMetric(split, "split-miss")
}

// BenchmarkExtensionWritePolicy measures store traffic per write under
// write-through and copy-back.
func BenchmarkExtensionWritePolicy(b *testing.B) {
	words := pdpWords(b, "SIMP", benchRefs)
	for _, cb := range []bool{false, true} {
		cb := cb
		name := "write-through"
		if cb {
			name = "copy-back"
		}
		b.Run(name, func(b *testing.B) {
			var per float64
			for i := 0; i < b.N; i++ {
				c, err := cache.New(cache.Config{NetSize: 1024, BlockSize: 16,
					SubBlockSize: 2, Assoc: 4, WordSize: 2, CopyBack: cb})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range words {
					c.Access(r)
				}
				c.FlushUsage()
				per = c.Stats().WriteTrafficPerStore()
			}
			b.ReportMetric(per, "words/store")
		})
	}
}

// BenchmarkExtensionCtxSwitch interleaves three tasks at a fixed
// quantum through one cache (the §3.3 context-switch study).
func BenchmarkExtensionCtxSwitch(b *testing.B) {
	var miss float64
	for i := 0; i < b.N; i++ {
		srcs := make([]trace.Source, 0, 3)
		for _, n := range []string{"ED", "ROFF", "SIMP"} {
			prof, _ := synth.ProfileByName(n)
			g, err := synth.NewGenerator(prof, benchRefs/3)
			if err != nil {
				b.Fatal(err)
			}
			srcs = append(srcs, g)
		}
		src, err := trace.Interleave(1000, srcs...)
		if err != nil {
			b.Fatal(err)
		}
		c, err := cache.New(cache.Config{NetSize: 1024, BlockSize: 16,
			SubBlockSize: 8, Assoc: 4, WordSize: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Run(trace.NewSplitter(src, 2)); err != nil {
			b.Fatal(err)
		}
		miss = c.Stats().MissRatio()
	}
	b.ReportMetric(miss, "miss")
}

// BenchmarkExtensionPrefetch measures tagged OBL prefetch against
// demand fetch.
func BenchmarkExtensionPrefetch(b *testing.B) {
	words := pdpWords(b, "ED", benchRefs)
	for _, obl := range []bool{false, true} {
		obl := obl
		name := "demand"
		if obl {
			name = "tagged-obl"
		}
		b.Run(name, func(b *testing.B) {
			var miss, traffic float64
			for i := 0; i < b.N; i++ {
				c, err := cache.New(cache.Config{NetSize: 512, BlockSize: 16,
					SubBlockSize: 8, Assoc: 4, WordSize: 2, PrefetchOBL: obl})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range words {
					c.Access(r)
				}
				miss, traffic = c.Stats().MissRatio(), c.Stats().TrafficRatio()
			}
			b.ReportMetric(miss, "miss")
			b.ReportMetric(traffic, "traffic")
		})
	}
}

// BenchmarkExtensionBusSat runs the discrete-event shared-bus system
// with four cached processors.
func BenchmarkExtensionBusSat(b *testing.B) {
	names := []string{"ED", "ROFF", "SIMP", "PLOT"}
	procs := make([]busim.Processor, len(names))
	for i, n := range names {
		prof, _ := synth.ProfileByName(n)
		refs, err := synth.Generate(prof, benchRefs/2)
		if err != nil {
			b.Fatal(err)
		}
		words, err := trace.SplitAll(trace.NewSliceSource(refs), 2)
		if err != nil {
			b.Fatal(err)
		}
		procs[i] = busim.Processor{
			Name: n,
			Config: cache.Config{NetSize: 1024, BlockSize: 16,
				SubBlockSize: 8, Assoc: 4, WordSize: 2},
			Accesses: words,
		}
	}
	var thpt float64
	for i := 0; i < b.N; i++ {
		res, err := busim.Run(busim.Config{CacheCycles: 1, BusCyclesPerWord: 4}, procs)
		if err != nil {
			b.Fatal(err)
		}
		thpt = res.Throughput
	}
	b.ReportMetric(thpt, "accesses/cycle")
}
