package subcache

import (
	"testing"
)

func TestCharacterizeWorkload(t *testing.T) {
	ch, err := CharacterizeWorkload("ED", 50000, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ch.WordSize != 2 {
		t.Errorf("word size = %d, want PDP-11's 2", ch.WordSize)
	}
	if ch.WordAccesses == 0 || ch.IFetches == 0 || ch.Reads == 0 || ch.Writes == 0 {
		t.Errorf("reference mix incomplete: %+v", ch)
	}
	if ch.IFetches+ch.Reads+ch.Writes != ch.WordAccesses {
		t.Error("kinds do not partition accesses")
	}
	if ch.FootprintBytes == 0 {
		t.Error("zero footprint")
	}
	if ch.MeanRunWords < 2 {
		t.Errorf("mean run = %g, want sequential bias", ch.MeanRunWords)
	}
	if ch.String() == "" {
		t.Error("empty String")
	}
}

func TestCharacterizeCurveMonotone(t *testing.T) {
	ch, err := CharacterizeWorkload("FGO1", 50000, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	caps := ch.Capacities()
	if len(caps) < 5 {
		t.Fatalf("only %d capacities", len(caps))
	}
	for i := 1; i < len(caps); i++ {
		if caps[i] <= caps[i-1] {
			t.Fatal("capacities not sorted")
		}
		if ch.MissRatioAt[caps[i]] > ch.MissRatioAt[caps[i-1]]+1e-12 {
			t.Errorf("miss ratio rose from %dB to %dB", caps[i-1], caps[i])
		}
	}
}

func TestCharacterizeWorkingSets(t *testing.T) {
	small, err := CharacterizeWorkload("GREP", 60000, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := CharacterizeWorkload("PGO2", 60000, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if small.WorkingSet90 == 0 || big.WorkingSet90 == 0 {
		t.Skip("cold misses dominate at this trace length")
	}
	// The System/370 PL/I job needs a far larger cache for 90% hits
	// than the Z8000 grep.
	if big.WorkingSet90 <= small.WorkingSet90 {
		t.Errorf("working sets out of order: PGO2 %dB <= GREP %dB",
			big.WorkingSet90, small.WorkingSet90)
	}
}

func TestCharacterizeOptions(t *testing.T) {
	ch, err := CharacterizeWorkload("ED", 20000, AnalyzeOptions{
		WordSize:   4,
		BlockSize:  16,
		Capacities: []int{64, 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch.WordSize != 4 || ch.BlockSize != 16 {
		t.Errorf("options not honoured: %+v", ch)
	}
	if len(ch.MissRatioAt) != 2 {
		t.Errorf("capacities not honoured: %v", ch.MissRatioAt)
	}
}

func TestCharacterizeUnknownWorkload(t *testing.T) {
	if _, err := CharacterizeWorkload("NOSUCH", 10, AnalyzeOptions{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCharacterizeCustomSource(t *testing.T) {
	refs := []Ref{
		{Addr: 0x100, Kind: IFetch, Size: 2},
		{Addr: 0x102, Kind: IFetch, Size: 2},
		{Addr: 0x100, Kind: IFetch, Size: 2},
	}
	ch, err := Characterize(NewSliceSource(refs), AnalyzeOptions{Capacities: []int{8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if ch.WordAccesses != 3 || ch.FootprintBytes != 4 {
		t.Errorf("custom source stats wrong: %+v", ch)
	}
	// All three accesses land in one 8-byte block: one cold miss.
	if got := ch.MissRatioAt[8]; got != 1.0/3 {
		t.Errorf("miss at 8B = %g, want 1/3", got)
	}
}

// TestCharacterizeAgreesWithSimulator: the Mattson curve must match a
// directly simulated fully-associative LRU cache at the same geometry.
func TestCharacterizeAgreesWithSimulator(t *testing.T) {
	const n, blockSize, capBytes = 30000, 8, 256
	refs, err := GenerateWorkload("SORT", n)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Characterize(NewSliceSource(refs), AnalyzeOptions{
		WordSize: 2, BlockSize: blockSize, Capacities: []int{capBytes},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The oracle ignores writes entirely, so the simulator must too
	// (write-allocate would perturb LRU recency).
	sim, err := New(Config{
		NetSize: capBytes, BlockSize: blockSize, SubBlockSize: blockSize,
		Assoc: capBytes / blockSize, WordSize: 2, Write: WriteIgnore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	if got, want := ch.MissRatioAt[capBytes], sim.MissRatio(); got != want {
		t.Errorf("oracle %.6f != simulator %.6f", got, want)
	}
}
