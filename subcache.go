// Package subcache is a trace-driven simulator for small on-chip
// microprocessor caches with sub-block (sector) placement, reproducing
// Hill & Smith, "Experimental Evaluation of On-Chip Microprocessor Cache
// Memories" (ISCA 1984).
//
// The package exposes the full toolkit behind the paper:
//
//   - a set-associative sub-block cache simulator (Config, Simulator)
//     with LRU/FIFO/Random replacement and demand, load-forward and
//     whole-block fetch policies;
//   - the paper's metrics: miss ratio, traffic ratio, nibble-mode scaled
//     traffic ratio (ScaledTrafficRatio) and gross cache size
//     (Config.GrossSize);
//   - trace input/output in a Dinero-style text format and a compact
//     binary format (OpenTraceFile, WriteTraceFile);
//   - calibrated synthetic workloads standing in for the paper's PDP-11,
//     Z8000, VAX-11 and System/370 trace suites (Workloads,
//     WorkloadByName, SimulateWorkload).
//
// # Quick start
//
//	cfg := subcache.Config{
//		NetSize: 1024, BlockSize: 16, SubBlockSize: 8,
//		Assoc: 4, WordSize: 2,
//	}
//	run, err := subcache.SimulateWorkload("ED", cfg, 1_000_000)
//	if err != nil { ... }
//	fmt.Printf("miss %.3f traffic %.3f\n", run.Miss, run.Traffic)
//
// The cmd/ directory provides tracegen (emit the synthetic traces),
// cachesim (a Dinero-like CLI) and experiments (regenerate every table
// and figure in the paper); see README.md.
package subcache

import (
	"context"
	"fmt"
	"io"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/membus"
	"subcache/internal/metrics"
	"subcache/internal/sweep"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

// Core configuration types, aliased from the implementation packages so
// that downstream users never import internal paths.
type (
	// Config describes a cache organisation in the paper's vocabulary:
	// net (data) size, block size (bytes per tag), sub-block size
	// (transfer unit), associativity and data-path word size.
	Config = cache.Config
	// Replacement selects the victim policy (LRU, FIFO, Random).
	Replacement = cache.Replacement
	// Fetch selects the miss fill policy (DemandSubBlock, LoadForward,
	// LoadForwardOptimized, WholeBlock).
	Fetch = cache.Fetch
	// WritePolicy controls how data writes touch the cache.
	WritePolicy = cache.WritePolicy
	// Stats holds the event counts of one simulation.
	Stats = cache.Stats

	// Address is a byte address in the simulated address space.
	Address = addr.Addr
	// Ref is one memory reference (address, kind, size).
	Ref = trace.Ref
	// Kind classifies a reference (IFetch, Read, Write).
	Kind = trace.Kind
	// Source is a stream of references.
	Source = trace.Source

	// Run is the measured outcome of one (workload, config) simulation.
	Run = metrics.Run
	// Summary is the unweighted average of runs across a workload suite.
	Summary = metrics.Summary

	// Arch identifies one of the paper's four architectures.
	Arch = synth.Arch
	// Workload parameterises one synthetic workload.
	Workload = synth.Profile

	// CostModel prices bus transactions (Linear, Nibble, Transactional).
	CostModel = membus.CostModel
)

// Replacement policies.
const (
	LRU    = cache.LRU
	FIFO   = cache.FIFO
	Random = cache.Random
)

// Fetch policies.
const (
	DemandSubBlock       = cache.DemandSubBlock
	LoadForward          = cache.LoadForward
	LoadForwardOptimized = cache.LoadForwardOptimized
	WholeBlock           = cache.WholeBlock
)

// Write policies.
const (
	WriteAllocate   = cache.WriteAllocate
	WriteNoAllocate = cache.WriteNoAllocate
	WriteIgnore     = cache.WriteIgnore
)

// Reference kinds.
const (
	IFetch = trace.IFetch
	Read   = trace.Read
	Write  = trace.Write
)

// Architectures.
const (
	PDP11 = synth.PDP11
	Z8000 = synth.Z8000
	VAX11 = synth.VAX11
	S370  = synth.S370
)

// Architectures lists the paper's four architectures in presentation
// order.
func Architectures() []Arch { return synth.AllArchs() }

// Workloads returns the calibrated synthetic workloads standing in for
// the architecture's trace table (Tables 2-5 of the paper).
func Workloads(a Arch) []Workload { return synth.Workloads(a) }

// WorkloadByName finds a workload across all architectures (e.g. "ED",
// "CCP", "SPICE", "FGO1").
func WorkloadByName(name string) (Workload, bool) { return synth.ProfileByName(name) }

// WorkloadNames lists every available workload name, sorted.
func WorkloadNames() []string { return synth.Names() }

// Simulator drives one cache over a reference stream.  It accepts
// processor-level references of any size and splits them to data-path
// words internally, as the paper's tracer did.
type Simulator struct {
	cache *cache.Cache
}

// New builds a simulator for the given configuration.
func New(cfg Config) (*Simulator, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulator{cache: c}, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cache.Config() }

// Access presents one reference.  References wider than the data path
// become multiple word accesses.
func (s *Simulator) Access(r Ref) {
	w := s.cache.Config().WordSize
	n := trace.CountWords(r, w)
	first := addr.AlignDown(r.Addr, uint64(w))
	for i := 0; i < n; i++ {
		s.cache.Access(Ref{
			Addr: first + addr.Addr(i*w),
			Kind: r.Kind,
			Size: uint8(w),
		})
	}
}

// Run consumes src until EOF, then finalises residency statistics.
func (s *Simulator) Run(src Source) error {
	sp := trace.NewSplitter(src, s.cache.Config().WordSize)
	return s.cache.Run(sp)
}

// Stats exposes the accumulated counters.
func (s *Simulator) Stats() *Stats { return s.cache.Stats() }

// Finish folds still-resident blocks into the residency-utilisation
// statistics.  Run does this automatically; call Finish when driving the
// simulator through Access.
func (s *Simulator) Finish() { s.cache.FlushUsage() }

// MissRatio returns the current miss ratio.
func (s *Simulator) MissRatio() float64 { return s.cache.Stats().MissRatio() }

// TrafficRatio returns the current traffic ratio.
func (s *Simulator) TrafficRatio() float64 { return s.cache.Stats().TrafficRatio() }

// ScaledTrafficRatio prices the run's bus transactions with a cost model
// (NibbleModel() for the paper's nibble-mode memories).
func (s *Simulator) ScaledTrafficRatio(m CostModel) float64 {
	return membus.ScaledTraffic(s.cache.Stats(), m)
}

// NibbleModel returns the paper's nibble-mode cost model,
// cost(w) = 1 + (w-1)/3.
func NibbleModel() CostModel { return membus.PaperNibble }

// LinearModel returns the conventional proportional bus cost model.
func LinearModel() CostModel { return membus.Linear{} }

// TransactionalModel returns the general a + b*w bus cost model of §4.3.
func TransactionalModel(overhead, perWord float64) CostModel {
	return membus.Transactional{Overhead: overhead, PerWord: perWord}
}

// EffectiveAccessTime evaluates the paper's t_eff model (§3.2).
func EffectiveAccessTime(tCache, tMem, missRatio float64) float64 {
	return metrics.EffectiveAccessTime(tCache, tMem, missRatio)
}

// SimulateWorkload generates refs references of the named synthetic
// workload and drives them through a fresh cache, returning the measured
// run.  The paper's runs use refs = 1,000,000.
func SimulateWorkload(name string, cfg Config, refs int) (Run, error) {
	return SimulateWorkloadContext(context.Background(), name, cfg, refs)
}

// SimulateWorkloadContext is SimulateWorkload honoring a context:
// cancellation or deadline expiry aborts the replay promptly (at the
// next trace chunk boundary) with ctx's error.
func SimulateWorkloadContext(ctx context.Context, name string, cfg Config, refs int) (Run, error) {
	prof, ok := synth.ProfileByName(name)
	if !ok {
		return Run{}, fmt.Errorf("subcache: unknown workload %q (have %v)", name, synth.Names())
	}
	return sweep.RunOneContext(ctx, prof, cfg, refs)
}

// SimulateSuite runs every workload of an architecture through cfg and
// returns the per-workload runs plus their unweighted average, the
// paper's aggregation.
func SimulateSuite(a Arch, cfg Config, refs int) ([]Run, Summary, error) {
	var runs []Run
	for _, prof := range synth.Workloads(a) {
		r, err := sweep.RunOne(prof, cfg, refs)
		if err != nil {
			return nil, Summary{}, err
		}
		runs = append(runs, r)
	}
	return runs, metrics.Average(runs), nil
}

// Engine selects how multi-configuration simulations replay traces:
// ReferenceEngine makes one trace pass per configuration,
// MultiPassEngine evaluates whole configuration families in a single
// pass with bit-identical counters (docs/MODEL.md, "Single-pass
// multi-configuration sweeps").
type Engine = sweep.Engine

// Sweep engines.
const (
	ReferenceEngine = sweep.Reference
	MultiPassEngine = sweep.MultiPass
)

// ParseEngine converts an engine name ("reference", "multipass") to an
// Engine, for command-line flags.
func ParseEngine(s string) (Engine, error) { return sweep.ParseEngine(s) }

// SimulateWorkloadMany measures every configuration against the named
// workload in a single pass over its trace.  Configurations that share
// tag geometry and policies, differing only in SubBlockSize and Fetch,
// are simulated together by the single-pass multipass kernel;
// configurations the kernel cannot host (OBL prefetch,
// write-no-allocate) ride the same pass on individual reference
// simulators.  The pass is sharded across the machine's cores by the
// sweep harness's chunk-broadcast executor -- the trace is streamed,
// never materialised, and every configuration still sees the complete
// ordered stream.  The returned runs align with cfgs and are
// bit-identical to len(cfgs) separate SimulateWorkload calls.  All
// configurations must agree on WordSize, since they consume one shared
// word-split trace.
func SimulateWorkloadMany(name string, cfgs []Config, refs int) ([]Run, error) {
	return SimulateWorkloadManyContext(context.Background(), name, cfgs, refs)
}

// SimulateWorkloadManyContext is SimulateWorkloadMany honoring a
// context: cancellation or deadline expiry aborts the streamed pass
// promptly with ctx's error, and no partial runs are returned.
func SimulateWorkloadManyContext(ctx context.Context, name string, cfgs []Config, refs int) ([]Run, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("subcache: no configurations")
	}
	prof, ok := synth.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("subcache: unknown workload %q (have %v)", name, synth.Names())
	}
	return sweep.RunConfigs(ctx, prof, cfgs, refs, 0)
}

// GenerateWorkload materialises n references of the named workload,
// for callers that want the raw trace (e.g. to write it to a file).
func GenerateWorkload(name string, n int) ([]Ref, error) {
	prof, ok := synth.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("subcache: unknown workload %q", name)
	}
	return synth.Generate(prof, n)
}

// NewSliceSource adapts a reference slice to a Source.
func NewSliceSource(refs []Ref) Source { return trace.NewSliceSource(refs) }

// Limit truncates a source after n references.
func Limit(src Source, n int) Source { return trace.Limit(src, n) }

// EOF is the sentinel returned by sources at end of stream.
var EOF = io.EOF
