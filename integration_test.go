package subcache

// End-to-end integration tests across the full pipeline: workload
// generation -> trace file round trip -> simulation -> metrics, and the
// paper's main qualitative claims at reduced trace lengths.

import (
	"math"
	"path/filepath"
	"testing"
)

// TestPipelineFileEqualsDirect verifies that simulating a trace read
// back from disk gives identical results to simulating the in-memory
// trace, for both file formats.
func TestPipelineFileEqualsDirect(t *testing.T) {
	refs, err := GenerateWorkload("SORT", 20000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NetSize: 512, BlockSize: 16, SubBlockSize: 4, Assoc: 4, WordSize: 2}

	direct, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.Run(NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"t.din", "t.strc"} {
		path := filepath.Join(t.TempDir(), name)
		if _, err := WriteTraceFile(path, NewSliceSource(refs), FormatAuto); err != nil {
			t.Fatal(err)
		}
		tf, err := OpenTraceFile(path, FormatAuto)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(tf); err != nil {
			t.Fatal(err)
		}
		tf.Close()
		if sim.Stats().Misses != direct.Stats().Misses ||
			sim.Stats().Accesses != direct.Stats().Accesses ||
			sim.Stats().WordsFetched != direct.Stats().WordsFetched {
			t.Errorf("%s: file-driven simulation diverged: %v vs %v",
				name, sim.Stats(), direct.Stats())
		}
	}
}

// TestSubBlockTradeoffShape checks the paper's central claim on every
// architecture: for a fixed block size, shrinking the sub-block
// monotonically raises the miss ratio and lowers the traffic ratio.
func TestSubBlockTradeoffShape(t *testing.T) {
	for _, a := range Architectures() {
		name := Workloads(a)[0].Name
		var prevMiss, prevTraffic float64
		first := true
		for _, sub := range []int{16, 8, 4} {
			if sub < a.WordSize() {
				continue
			}
			cfg := Config{NetSize: 512, BlockSize: 16, SubBlockSize: sub,
				Assoc: 4, WordSize: a.WordSize()}
			run, err := SimulateWorkload(name, cfg, 60000)
			if err != nil {
				t.Fatal(err)
			}
			if !first {
				if run.Miss < prevMiss {
					t.Errorf("%v %s: miss fell when sub-block shrank to %d (%.4f < %.4f)",
						a, name, sub, run.Miss, prevMiss)
				}
				if run.Traffic > prevTraffic {
					t.Errorf("%v %s: traffic rose when sub-block shrank to %d (%.4f > %.4f)",
						a, name, sub, run.Traffic, prevTraffic)
				}
			}
			prevMiss, prevTraffic, first = run.Miss, run.Traffic, false
		}
	}
}

// TestMissRatioFallsWithCacheSize checks monotonicity over the paper's
// size range on one workload per architecture.
func TestMissRatioFallsWithCacheSize(t *testing.T) {
	for _, a := range Architectures() {
		name := Workloads(a)[0].Name
		prev := math.Inf(1)
		for _, net := range []int{64, 256, 1024} {
			cfg := Config{NetSize: net, BlockSize: 8, SubBlockSize: 8,
				Assoc: 4, WordSize: a.WordSize()}
			run, err := SimulateWorkload(name, cfg, 60000)
			if err != nil {
				t.Fatal(err)
			}
			if run.Miss > prev {
				t.Errorf("%v %s: miss ratio rose with cache size at %dB (%.4f > %.4f)",
					a, name, net, run.Miss, prev)
			}
			prev = run.Miss
		}
	}
}

// TestSectorCacheWorseThan4Way reproduces Table 6's qualitative result
// at reduced scale: the 360/85 sector organisation misses substantially
// more than 4-way set-associative at equal net size.
func TestSectorCacheWorseThan4Way(t *testing.T) {
	sector := Config{NetSize: 16384, BlockSize: 1024, SubBlockSize: 64, Assoc: 16, WordSize: 4}
	sa4 := Config{NetSize: 16384, BlockSize: 64, SubBlockSize: 64, Assoc: 4, WordSize: 4}
	_, sSector, err := SimulateSuite(S370, sector, 100000)
	if err != nil {
		t.Fatal(err)
	}
	_, s4, err := SimulateSuite(S370, sa4, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if sSector.Miss < 1.5*s4.Miss {
		t.Errorf("sector cache (%.4f) not clearly worse than 4-way (%.4f); paper finds ~3x",
			sSector.Miss, s4.Miss)
	}
	// Most of each sector is never referenced while resident (paper: 72%).
	if sSector.Utilization > 0.5 {
		t.Errorf("sector utilization %.2f too high; paper finds 28%% touched", sSector.Utilization)
	}
}

// TestLoadForwardBetweenExtremes reproduces Table 8's structure: LF
// traffic sits between sub-block-only and whole-block fill, and LF miss
// ratio sits close to whole-block fill.
func TestLoadForwardBetweenExtremes(t *testing.T) {
	base := Config{NetSize: 256, BlockSize: 16, Assoc: 4, WordSize: 2, WarmStart: true}
	wb := base
	wb.SubBlockSize = 16
	sb := base
	sb.SubBlockSize = 2
	lf := sb
	lf.Fetch = LoadForward

	avg := func(cfg Config) (miss, traffic float64) {
		for _, name := range []string{"CCP", "C1", "C2"} {
			run, err := SimulateWorkload(name, cfg, 150000)
			if err != nil {
				t.Fatal(err)
			}
			miss += run.Miss / 3
			traffic += run.Traffic / 3
		}
		return
	}
	wbMiss, wbTraf := avg(wb)
	sbMiss, sbTraf := avg(sb)
	lfMiss, lfTraf := avg(lf)

	if !(lfTraf < wbTraf && lfTraf > sbTraf) {
		t.Errorf("LF traffic %.4f not between sub-only %.4f and whole-block %.4f",
			lfTraf, sbTraf, wbTraf)
	}
	if !(lfMiss >= wbMiss && lfMiss < sbMiss) {
		t.Errorf("LF miss %.4f not in [whole-block %.4f, sub-only %.4f)",
			lfMiss, wbMiss, sbMiss)
	}
	// "Load forward ... cuts the miss ratio by a much larger factor"
	// than its traffic cost, relative to plain sub-blocks.
	if lfMiss > 0.5*sbMiss {
		t.Errorf("LF miss %.4f did not substantially improve on sub-only %.4f", lfMiss, sbMiss)
	}
}

// TestNibbleModeFavorsLargerSubBlocks reproduces §4.3: under the
// 1+(w-1)/3 cost model the traffic-optimal sub-block size for a fixed
// block grows relative to the linear model.
func TestNibbleModeFavorsLargerSubBlocks(t *testing.T) {
	bestLinear, bestNibble := 0, 0
	minLinear, minNibble := math.Inf(1), math.Inf(1)
	for _, sub := range []int{2, 4, 8, 16} {
		cfg := Config{NetSize: 512, BlockSize: 16, SubBlockSize: sub, Assoc: 4, WordSize: 2}
		var traffic, scaled float64
		for _, w := range Workloads(PDP11)[:3] {
			run, err := SimulateWorkload(w.Name, cfg, 100000)
			if err != nil {
				t.Fatal(err)
			}
			traffic += run.Traffic / 3
			scaled += run.Scaled / 3
		}
		if traffic < minLinear {
			minLinear, bestLinear = traffic, sub
		}
		if scaled < minNibble {
			minNibble, bestNibble = scaled, sub
		}
	}
	if bestNibble < 2*bestLinear {
		t.Errorf("nibble-optimal sub-block %d not >= 2x linear-optimal %d", bestNibble, bestLinear)
	}
}

// TestWarmStartLowersMissRatio: warm-start accounting must never report
// a higher miss ratio than cold-start on the same trace.
func TestWarmStartLowersMissRatio(t *testing.T) {
	cold := Config{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
	warm := cold
	warm.WarmStart = true
	rc, err := SimulateWorkload("NROFF", cold, 100000)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := SimulateWorkload("NROFF", warm, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Miss > rc.Miss {
		t.Errorf("warm-start miss %.4f exceeds cold-start %.4f", rw.Miss, rc.Miss)
	}
}
