package subcache

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"subcache/internal/trace"
)

// TraceFormat selects a trace file encoding.
type TraceFormat int

const (
	// FormatAuto picks by file extension: ".strc" is binary, anything
	// else is Dinero-style text.
	FormatAuto TraceFormat = iota
	// FormatText is the Dinero-style "label hexaddr size" text format
	// (label 0 = read, 1 = write, 2 = instruction fetch).
	FormatText
	// FormatBinary is the compact 10-byte-per-record .strc format.
	FormatBinary
)

func resolveFormat(path string, f TraceFormat) TraceFormat {
	if f != FormatAuto {
		return f
	}
	base := path
	if isGzipPath(base) {
		base = strings.TrimSuffix(strings.TrimSuffix(base, ".gz"), ".GZ")
	}
	if strings.EqualFold(filepath.Ext(base), ".strc") {
		return FormatBinary
	}
	return FormatText
}

// isGzipPath reports whether the file name indicates gzip compression.
// Both formats may be wrapped: "trace.din.gz", "trace.strc.gz".
func isGzipPath(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".gz")
}

// TraceFile is an open trace ready for reading; it implements Source
// and must be closed.
type TraceFile struct {
	src trace.Source
	gz  *gzip.Reader
	f   *os.File
}

// Next implements Source.
func (t *TraceFile) Next() (Ref, error) { return t.src.Next() }

// Close releases the underlying file (and gzip decompressor, if any).
func (t *TraceFile) Close() error {
	if t.gz != nil {
		if err := t.gz.Close(); err != nil {
			t.f.Close()
			return err
		}
	}
	return t.f.Close()
}

// OpenTraceFile opens a trace for reading in the given (or
// auto-detected) format.  Files named *.gz are decompressed
// transparently (format detection then applies to the inner name, e.g.
// "trace.strc.gz").
func OpenTraceFile(path string, format TraceFormat) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var r io.Reader = f
	var gz *gzip.Reader
	if isGzipPath(path) {
		gz, err = gzip.NewReader(bufio.NewReader(f))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("subcache: %s: %w", path, err)
		}
		r = gz
	}
	switch resolveFormat(path, format) {
	case FormatBinary:
		br, err := trace.NewBinReader(r)
		if err != nil {
			if gz != nil {
				gz.Close()
			}
			f.Close()
			return nil, fmt.Errorf("subcache: %s: %w", path, err)
		}
		return &TraceFile{src: br, gz: gz, f: f}, nil
	default:
		return &TraceFile{src: trace.NewTextReader(bufio.NewReader(r)), gz: gz, f: f}, nil
	}
}

// WriteTraceFile writes every reference from src to path in the given
// (or auto-detected) format, returning the number written.  Paths named
// *.gz are gzip-compressed.
func WriteTraceFile(path string, src Source, format TraceFormat) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	var out io.Writer = f
	var gz *gzip.Writer
	if isGzipPath(path) {
		gz = gzip.NewWriter(f)
		out = gz
	}
	n := 0
	switch resolveFormat(path, format) {
	case FormatBinary:
		w, err := trace.NewBinWriter(out)
		if err != nil {
			return 0, err
		}
		for {
			r, err := src.Next()
			if err == EOF {
				break
			}
			if err != nil {
				return n, err
			}
			if err := w.Write(r); err != nil {
				return n, err
			}
			n++
		}
		if err := w.Flush(); err != nil {
			return n, err
		}
	default:
		w := trace.NewTextWriter(out)
		for {
			r, err := src.Next()
			if err == EOF {
				break
			}
			if err != nil {
				return n, err
			}
			if err := w.Write(r); err != nil {
				return n, err
			}
			n++
		}
		if err := w.Flush(); err != nil {
			return n, err
		}
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return n, err
		}
	}
	return n, f.Sync()
}
