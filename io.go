package subcache

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"subcache/internal/trace"
)

// TraceFormat selects a trace file encoding.
type TraceFormat int

const (
	// FormatAuto picks by file extension: ".strc" is binary, anything
	// else is Dinero-style text.
	FormatAuto TraceFormat = iota
	// FormatText is the Dinero-style "label hexaddr size" text format
	// (label 0 = read, 1 = write, 2 = instruction fetch).
	FormatText
	// FormatBinary is the compact 10-byte-per-record .strc format.
	FormatBinary
)

func resolveFormat(path string, f TraceFormat) TraceFormat {
	if f != FormatAuto {
		return f
	}
	base := path
	if isGzipPath(base) {
		base = strings.TrimSuffix(strings.TrimSuffix(base, ".gz"), ".GZ")
	}
	if strings.EqualFold(filepath.Ext(base), ".strc") {
		return FormatBinary
	}
	return FormatText
}

// isGzipPath reports whether the file name indicates gzip compression.
// Both formats may be wrapped: "trace.din.gz", "trace.strc.gz".
func isGzipPath(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".gz")
}

// TraceFile is an open trace ready for reading; it implements Source
// and must be closed.
type TraceFile struct {
	src trace.Source
	gz  *gzip.Reader
	f   *os.File
}

// Next implements Source.
func (t *TraceFile) Next() (Ref, error) { return t.src.Next() }

// Close releases the underlying file (and gzip decompressor, if any).
func (t *TraceFile) Close() error {
	if t.gz != nil {
		if err := t.gz.Close(); err != nil {
			t.f.Close()
			return err
		}
	}
	return t.f.Close()
}

// OpenTraceFile opens a trace for reading in the given (or
// auto-detected) format.  Files named *.gz are decompressed
// transparently (format detection then applies to the inner name, e.g.
// "trace.strc.gz").
func OpenTraceFile(path string, format TraceFormat) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var r io.Reader = f
	var gz *gzip.Reader
	if isGzipPath(path) {
		gz, err = gzip.NewReader(bufio.NewReader(f))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("subcache: %s: %w", path, err)
		}
		r = gz
	}
	switch resolveFormat(path, format) {
	case FormatBinary:
		br, err := trace.NewBinReader(r)
		if err != nil {
			if gz != nil {
				gz.Close()
			}
			f.Close()
			return nil, fmt.Errorf("subcache: %s: %w", path, err)
		}
		return &TraceFile{src: br, gz: gz, f: f}, nil
	default:
		return &TraceFile{src: trace.NewTextReader(bufio.NewReader(r)), gz: gz, f: f}, nil
	}
}

// refWriter is the encoding-independent writing interface both trace
// formats implement.
type refWriter interface {
	Write(trace.Ref) error
	Flush() error
}

// WriteTraceFile writes every reference from src to path in the given
// (or auto-detected) format, returning the number written.  Paths named
// *.gz are gzip-compressed.  On any error the partial output file is
// removed, so a path either holds a complete, well-formed trace
// (gzip footer included) or does not exist.
func WriteTraceFile(path string, src Source, format TraceFormat) (n int, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	var gz *gzip.Writer
	defer func() {
		if err == nil {
			return
		}
		// Abandon the partial file: release the compressor and the
		// descriptor, then remove it so no truncated or footer-less
		// trace is left behind to fail a later read.
		if gz != nil {
			gz.Close()
		}
		f.Close()
		os.Remove(path)
	}()

	var out io.Writer = f
	if isGzipPath(path) {
		gz = gzip.NewWriter(f)
		out = gz
	}
	var w refWriter
	switch resolveFormat(path, format) {
	case FormatBinary:
		if w, err = trace.NewBinWriter(out); err != nil {
			return 0, err
		}
	default:
		w = trace.NewTextWriter(out)
	}
	for {
		r, rerr := src.Next()
		if rerr == EOF {
			break
		}
		if rerr != nil {
			err = rerr
			return n, err
		}
		if err = w.Write(r); err != nil {
			return n, err
		}
		n++
	}
	if err = w.Flush(); err != nil {
		return n, err
	}
	if gz != nil {
		err = gz.Close()
		gz = nil // closed: the error path must not close it twice
		if err != nil {
			return n, err
		}
	}
	if err = f.Sync(); err != nil {
		return n, err
	}
	if err = f.Close(); err != nil {
		return n, err
	}
	return n, nil
}
