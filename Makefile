# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Link-time version stamp, surfaced by every command's -version flag,
# RUN.json, /v1/stats and the /metrics build-info series.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X subcache/internal/telemetry.Version=$(VERSION)"

.PHONY: all build test test-race vet test-faults test-telemetry test-stackdist test-service test-durability bench bench-kernel bench-sweep bench-check experiments traces cover fmt clean

all: build test

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

# Full test suite under the race detector; CI runs this on every push.
test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Deterministic fault-injection campaign plus the checkpoint, panic
# isolation and corrupt-trace suites, under the race detector.
test-faults:
	$(GO) test -race -run 'Fault|Panic|Campaign|ContinueOnError|Journal|Checkpoint|Corrupt|Truncated|Latched|Cancel|StackDist' ./internal/faultinject/... ./internal/sweep/... ./internal/trace/... .

# Telemetry contracts under the race detector: schema round-trips,
# counter exactness, bit-identical results with a recorder attached,
# and error-attribution mirroring in the fault campaign (see
# docs/OBSERVABILITY.md).
test-telemetry:
	$(GO) test -race -run 'Telemetry|Event|Stream|Sink|Manifest|Fingerprint|Snapshot|Run(Emit|Close|Concurrent)|Nop|Mirrored|WriteFileAtomic|Histogram|Quantile|Prom|Span|Metrics' ./internal/telemetry/... ./internal/sweep/... ./internal/faultinject/... ./internal/service/...

# Sweep service contracts under the race detector: admission control,
# singleflight dedup, tenant quotas, graceful drain with bit-identical
# checkpoint resume, clean terminal run-end events, and the goroutine
# leak regressions (see docs/SERVICE.md).
test-service:
	$(GO) test -race -run 'Service|Submit|Admission|Quota|Dedup|Drain|Fingerprint|RunEnd|Leak|RunClose' ./internal/service/... ./internal/telemetry/...

# Durability contracts under the race detector: job-journal replay and
# torn-tail recovery, verified-cache quarantine, TTL and LRU eviction,
# per-job timeouts, transient retry, and the SIGKILL kill-restart
# campaign (fixed seed 1; override with FAULTINJECT_SEED=N to explore
# other kill timings).  See docs/SERVICE.md "Durability and recovery".
test-durability:
	$(GO) test -race -run 'Journal|CrashRecovery|DrainThenRestart|CacheCorruption|CacheTTL|CacheSizeCap|JobTimeout|TransientRetry|ReadyzDraining|Transient|ServiceKillRestartCampaign' ./internal/service/... ./internal/sweep/... ./internal/faultinject/...

# Stack-distance engine gate under the race detector: differential
# equivalence, inclusion/conservation property tests, partition
# invariance, and the sweep-level three-engine identity checks.
test-stackdist:
	$(GO) test -race -run 'StackDist|Diff|Property|Partition|Supported|Engine' ./internal/stackdist/... ./internal/sweep/...

# One reduced-size benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot access-kernel microbenchmarks (hit, miss, load-forward fill) with
# allocation counts; all three must report 0 allocs/op.
bench-kernel:
	$(GO) test -run='^$$' -bench='BenchmarkAccessHit|BenchmarkAccessMiss|BenchmarkFillLoadForward' -benchmem ./internal/cache

# Time the three sweep engines on the Table 7 grid and refresh BENCH_sweep.json.
bench-sweep:
	$(GO) run ./cmd/benchsweep

# Gate the engine kernels against BENCH_baseline.json, failing on a >25%
# ns/op regression after rescaling by a core-frequency calibration (so a
# throttled CI machine does not fail spuriously).  Override the band with
# `make bench-check TOLERANCE=0.40`; after an intentional kernel change,
# refresh the baseline with `go run ./cmd/benchcheck -update`.
bench-check:
	$(GO) run ./cmd/benchcheck $(if $(TOLERANCE),-tolerance $(TOLERANCE))

# Regenerate every table and figure at the paper's 1M-reference scale.
experiments:
	$(GO) run ./cmd/experiments -refs 1000000 -out results

# Write the 25-workload synthetic trace suite to traces/.
traces:
	$(GO) run ./cmd/tracegen -all -n 1000000 -out traces

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

clean:
	rm -rf results traces
