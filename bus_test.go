package subcache

import "testing"

func TestSimulateSharedBus(t *testing.T) {
	cfg := paperConfig()
	var procs []BusProcessor
	for _, name := range []string{"ED", "ROFF"} {
		p, err := BusProcessorFromWorkload(name, cfg, 20000)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	res, err := SimulateSharedBus(BusConfig{CacheCycles: 1, BusCyclesPerWord: 4}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Processors) != 2 {
		t.Fatalf("got %d processor results", len(res.Processors))
	}
	for _, p := range res.Processors {
		if p.Accesses == 0 || p.Cycles == 0 || p.CPA < 1 {
			t.Errorf("implausible processor result: %+v", p)
		}
	}
	if res.BusUtilization <= 0 || res.BusUtilization > 1 {
		t.Errorf("bus utilization = %g", res.BusUtilization)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %g", res.Throughput)
	}
}

func TestBusProcessorFromWorkloadErrors(t *testing.T) {
	if _, err := BusProcessorFromWorkload("NOSUCH", paperConfig(), 10); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSharedBusScalesWithCaches(t *testing.T) {
	// The public-API version of the paper's core system argument: two
	// well-cached processors outrun one.
	cfg := paperConfig()
	p1, err := BusProcessorFromWorkload("ED", cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BusProcessorFromWorkload("ROFF", cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := SimulateSharedBus(BusConfig{}, []BusProcessor{p1})
	if err != nil {
		t.Fatal(err)
	}
	// Processors consume their access slices; rebuild for the duo run.
	p1b, _ := BusProcessorFromWorkload("ED", cfg, 20000)
	duo, err := SimulateSharedBus(BusConfig{}, []BusProcessor{p1b, p2})
	if err != nil {
		t.Fatal(err)
	}
	if duo.Throughput <= solo.Throughput {
		t.Errorf("adding a cached processor did not raise throughput: %g vs %g",
			duo.Throughput, solo.Throughput)
	}
}
