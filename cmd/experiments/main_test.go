package main

import (
	"context"
	"strings"
	"testing"

	"subcache/internal/sweep"
	"subcache/internal/synth"
)

func TestRegistryIdsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if e.id == "" || e.title == "" || e.run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	// Every paper artifact must be present.
	for _, id := range []string{"table6", "table7", "table8",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"compare", "optsub", "ibuf", "riscii", "split", "writepol", "ctxswitch", "prefetch", "bussat", "sensitivity", "stackcache"} {
		if !seen[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestGridSweepMemoized(t *testing.T) {
	ctx := newRunCtx(context.Background(), 2000, sweep.Reference, 0, "")
	a, err := ctx.gridSweep(synth.PDP11, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.gridSweep(synth.PDP11, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("gridSweep did not memoise")
	}
	c, err := ctx.gridSweep(synth.Z8000, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("memoisation key ignores architecture")
	}
}

func TestTable8PointsMatchPaper(t *testing.T) {
	pts := table8Points()
	if len(pts) != 11 {
		t.Fatalf("Table 8 has 11 rows, got %d", len(pts))
	}
	lf := 0
	for _, p := range pts {
		if p.Fetch != 0 {
			lf++
			if p.Sub != 2 {
				t.Errorf("LF row %v must use 2-byte sub-blocks", p)
			}
		}
	}
	if lf != 3 {
		t.Errorf("Table 8 has 3 LF rows, got %d", lf)
	}
}

// TestExperimentsRunAtTinyScale executes a representative subset of the
// experiment runners end-to-end with a tiny trace, checking that each
// produces a non-empty artifact.
func TestExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	ctx := newRunCtx(context.Background(), 3000, sweep.Reference, 0, "")
	for _, id := range []string{"table6", "table8", "fig9", "optsub", "compare",
		"ablate-lf", "ibuf", "riscii", "split", "writepol"} {
		var found bool
		for _, e := range experiments {
			if e.id != id {
				continue
			}
			found = true
			art, err := e.run(ctx)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				continue
			}
			if strings.TrimSpace(art.text) == "" {
				t.Errorf("%s: empty text artifact", id)
			}
		}
		if !found {
			t.Errorf("experiment %q not found", id)
		}
	}
}
