package main

import (
	"context"
	"fmt"
	"sync"

	"subcache/internal/sweep"
	"subcache/internal/synth"
	"subcache/internal/telemetry"
)

// runCtx carries shared state across experiments: the trace length, the
// simulation engine and a memoised sweep cache, so Table 7 and the
// figures that share its grid simulate each (architecture, net-size set)
// only once.
type runCtx struct {
	// ctx cancels every sweep at its next chunk boundary; main wires
	// it to SIGINT/SIGTERM so an interrupted run leaves flushed event
	// streams and a clean checkpoint journal, not torn artifacts.
	ctx        context.Context
	refs       int
	engine     sweep.Engine
	shards     int
	checkpoint string
	// recorder is threaded into every sweep request; nil means off
	// (sweep normalises it to the no-op recorder).
	recorder telemetry.Recorder

	mu     sync.Mutex
	sweeps map[string]*sweep.Result
}

func newRunCtx(ctx context.Context, refs int, engine sweep.Engine, shards int, checkpoint string) *runCtx {
	return &runCtx{ctx: ctx, refs: refs, engine: engine, shards: shards, checkpoint: checkpoint,
		sweeps: make(map[string]*sweep.Result)}
}

// run executes req, attaching the shared checkpoint journal when the
// request is checkpointable.  Requests with a config Override cannot be
// fingerprinted (the journal refuses them), so they always re-run.
func (c *runCtx) run(req sweep.Request) (*sweep.Result, error) {
	if req.Override == nil {
		req.Checkpoint = c.checkpoint
	}
	req.Recorder = c.recorder
	return sweep.RunContext(c.ctx, req)
}

// gridSweep runs (or returns the memoised) full Table 1 grid for an
// architecture over the given net sizes.
func (c *runCtx) gridSweep(arch synth.Arch, nets []int) (*sweep.Result, error) {
	key := fmt.Sprintf("%d:%v", arch, nets)
	c.mu.Lock()
	if r, ok := c.sweeps[key]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()

	res, err := c.run(sweep.Request{
		Arch:   arch,
		Points: sweep.Grid(nets, arch.WordSize()),
		Refs:   c.refs,
		Engine: c.engine,
		Shards: c.shards,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.sweeps[key] = res
	c.mu.Unlock()
	return res, nil
}

// experiment is one reproducible artifact of the paper.
type experiment struct {
	id    string
	title string
	run   func(*runCtx) (artifact, error)
}

// experiments lists every artifact in the paper's order.  DESIGN.md's
// experiment index maps each id to its modules and bench target.
var experiments = []experiment{
	{"table6", "Table 6: 360/85 sector cache vs set-associative (16 KB)", runTable6},
	{"table7", "Table 7: miss/traffic/nibble ratios, all architectures", runTable7},
	{"table8", "Table 8: load-forward on Z8000 compiler traces", runTable8},
	{"fig1", "Figure 1: PDP-11 miss vs traffic, net 32/128/512", figExperiment(synth.PDP11, []int{32, 128, 512}, false)},
	{"fig2", "Figure 2: PDP-11 miss vs traffic, net 64/256/1024", figExperiment(synth.PDP11, []int{64, 256, 1024}, false)},
	{"fig3", "Figure 3: Z8000 miss vs traffic, net 32/128/512", figExperiment(synth.Z8000, []int{32, 128, 512}, false)},
	{"fig4", "Figure 4: Z8000 miss vs traffic, net 64/256/1024", figExperiment(synth.Z8000, []int{64, 256, 1024}, false)},
	{"fig5", "Figure 5: VAX-11 miss vs traffic, net 64/256/1024", figExperiment(synth.VAX11, []int{64, 256, 1024}, false)},
	{"fig6", "Figure 6: System/370 miss vs traffic, net 64/256/1024", figExperiment(synth.S370, []int{64, 256, 1024}, false)},
	{"fig7", "Figure 7: PDP-11 nibble-mode, net 32/128/512", figExperiment(synth.PDP11, []int{32, 128, 512}, true)},
	{"fig8", "Figure 8: PDP-11 nibble-mode, net 64/256/1024", figExperiment(synth.PDP11, []int{64, 256, 1024}, true)},
	{"fig9", "Figure 9: load-forward, net 64/256 (Z8000 CCP/C1/C2)", runFigure9},
	{"compare", "Paper-vs-measured comparison over Table 7 anchors", runCompare},
	{"optsub", "Optimal sub-block size: linear vs nibble cost (doubling claim)", runOptimalSubBlock},
	{"ablate-repl", "Ablation: LRU vs FIFO vs Random replacement", runAblateReplacement},
	{"ablate-assoc", "Ablation: associativity 1/2/4/8", runAblateAssoc},
	{"ablate-lf", "Ablation: redundant vs optimized load-forward", runAblateLF},
	{"ablate-warm", "Ablation: cold-start vs warm-start accounting", runAblateWarm},
}
