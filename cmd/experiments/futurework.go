package main

// Further experiments beyond extensions.go: the context-switch bias the
// paper acknowledges (§3.3) and the sequential prefetch it cites but
// defers ([11], §3.1).

import (
	"fmt"

	"subcache/internal/cache"
	"subcache/internal/report"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func init() {
	experiments = append(experiments,
		experiment{"ctxswitch", "Extension: context-switch bias (S3.3 caveat quantified)", runCtxSwitch},
		experiment{"prefetch", "Extension: tagged one-block-lookahead prefetch (Smith [11])", runPrefetch},
	)
}

// runCtxSwitch multiprograms three PDP-11 workloads through one cache,
// sweeping the scheduling quantum, to measure the upward bias the
// paper's single-task runs carry.
func runCtxSwitch(ctx *runCtx) (artifact, error) {
	t := report.NewTable("Context-switch effects (PDP-11 ED+SORT-like mix, 1024B 16,8 4-way)",
		"quantum (refs)", "miss", "traffic", "vs single-task")
	names := []string{"ED", "ROFF", "SIMP"}
	perTask := ctx.refs / len(names)

	run := func(quantum int) (float64, float64, error) {
		srcs := make([]trace.Source, len(names))
		for i, n := range names {
			prof, ok := synth.ProfileByName(n)
			if !ok {
				return 0, 0, fmt.Errorf("workload %s missing", n)
			}
			g, err := synth.NewGenerator(prof, perTask)
			if err != nil {
				return 0, 0, err
			}
			srcs[i] = g
		}
		var src trace.Source
		var err error
		if quantum > 0 {
			src, err = trace.Interleave(quantum, srcs...)
			if err != nil {
				return 0, 0, err
			}
		} else {
			// quantum <= 0: run tasks back to back (no switching).
			src, err = trace.Interleave(perTask+1, srcs...)
			if err != nil {
				return 0, 0, err
			}
		}
		c, err := cache.New(cache.Config{NetSize: 1024, BlockSize: 16,
			SubBlockSize: 8, Assoc: 4, WordSize: 2})
		if err != nil {
			return 0, 0, err
		}
		if err := c.Run(trace.NewSplitter(src, 2)); err != nil {
			return 0, 0, err
		}
		return c.Stats().MissRatio(), c.Stats().TrafficRatio(), nil
	}

	baseMiss, baseTraf, err := run(0)
	if err != nil {
		return artifact{}, err
	}
	t.Add("none (paper's method)",
		fmt.Sprintf("%.4f", baseMiss), fmt.Sprintf("%.4f", baseTraf), "1.00")
	for _, q := range []int{100000, 10000, 1000, 100} {
		miss, traf, err := run(q)
		if err != nil {
			return artifact{}, err
		}
		t.Add(fmt.Sprint(q),
			fmt.Sprintf("%.4f", miss), fmt.Sprintf("%.4f", traf),
			fmt.Sprintf("%.2f", miss/baseMiss))
	}
	note := "\nPaper S3.3: \"the omission of task switching effects will bias our\n" +
		"estimated performance upward, although the small sizes of the caches\n" +
		"studied make this effect minor.\"  The table quantifies the bias: at\n" +
		"realistic quanta (>= 10k references) the inflation is small; only\n" +
		"absurdly fast switching destroys a 1 KB cache's locality.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}

// runPrefetch compares demand fetch, load-forward and tagged
// one-block-lookahead prefetch at the same geometry, with pollution
// accounting.
func runPrefetch(ctx *runCtx) (artifact, error) {
	t := report.NewTable("Tagged OBL prefetch vs demand and load-forward (PDP-11 suite, 512B 16,8 4-way)",
		"policy", "miss", "traffic", "prefetch used", "pollution")
	type variantCfg struct {
		name string
		mut  func(*cache.Config)
	}
	variants := []variantCfg{
		{"demand", func(c *cache.Config) {}},
		{"load-forward", func(c *cache.Config) { c.Fetch = cache.LoadForward }},
		{"OBL prefetch", func(c *cache.Config) { c.PrefetchOBL = true }},
		{"LF + OBL", func(c *cache.Config) {
			c.Fetch = cache.LoadForward
			c.PrefetchOBL = true
		}},
	}
	profiles := synth.Workloads(synth.PDP11)
	for _, v := range variants {
		var miss, traf, used, polluted, fills float64
		for _, prof := range profiles {
			cfg := cache.Config{NetSize: 512, BlockSize: 16, SubBlockSize: 8,
				Assoc: 4, WordSize: 2}
			v.mut(&cfg)
			c, err := cache.New(cfg)
			if err != nil {
				return artifact{}, err
			}
			g, err := synth.NewGenerator(prof, ctx.refs)
			if err != nil {
				return artifact{}, err
			}
			if err := c.Run(trace.NewSplitter(g, 2)); err != nil {
				return artifact{}, err
			}
			st := c.Stats()
			miss += st.MissRatio()
			traf += st.TrafficRatio()
			used += float64(st.PrefetchUsed)
			polluted += float64(st.PrefetchEvictedUnused)
			fills += float64(st.PrefetchFills)
		}
		n := float64(len(profiles))
		usedFrac, polFrac := "", ""
		if fills > 0 {
			usedFrac = fmt.Sprintf("%.2f", used/fills)
			polFrac = fmt.Sprintf("%.2f", polluted/fills)
		}
		t.Add(v.name, fmt.Sprintf("%.4f", miss/n), fmt.Sprintf("%.4f", traf/n),
			usedFrac, polFrac)
	}
	note := "\nPrefetching \"reduces latency at a cost of increased memory traffic\n" +
		"and at a risk of memory pollution\" (S2.2); the paper deferred the\n" +
		"study (S3.1) and used load-forward as its bounded form.  'prefetch\n" +
		"used' and 'pollution' are fractions of prefetched blocks.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}
