package main

// The shared-bus saturation experiment: a discrete-event measurement of
// the multiprocessor scaling the paper's §1 argues for and the multibus
// example estimates analytically.

import (
	"fmt"

	"subcache/internal/busim"
	"subcache/internal/cache"
	"subcache/internal/report"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func init() {
	experiments = append(experiments,
		experiment{"bussat", "Extension: shared-bus saturation, discrete-event (S1 motivation)", runBusSat},
	)
}

// runBusSat sweeps the processor count for three per-processor cache
// choices and reports aggregate throughput and bus utilisation.
func runBusSat(ctx *runCtx) (artifact, error) {
	names := []string{"ED", "ROFF", "SIMP", "PLOT", "OPSYS", "TRACE", "ED", "ROFF"}
	perProc := ctx.refs / 4
	if perProc > 250000 {
		perProc = 250000 // the discrete-event run is per-access; cap it
	}

	type choice struct {
		label string
		net   int // 0 = no cache: model as 2,2 cache of 32B? no -- absent
	}
	choices := []choice{
		{"64B 16,16 (traffic > 1)", 64},
		{"64B 4,2 minimum cache", -64},
		{"1024B 16,8", 1024},
	}
	t := report.NewTable("Shared-bus saturation (discrete event, 4 bus cycles/word)",
		"per-processor cache", "N=1 thpt", "N=2", "N=4", "N=8", "bus util @8")

	for _, ch := range choices {
		cells := []string{ch.label}
		var util8 float64
		for _, n := range []int{1, 2, 4, 8} {
			procs := make([]busim.Processor, n)
			for i := 0; i < n; i++ {
				cfg := cache.Config{Assoc: 4, WordSize: 2}
				switch {
				case ch.net > 0 && ch.net == 64:
					cfg.NetSize, cfg.BlockSize, cfg.SubBlockSize = 64, 16, 16
				case ch.net < 0:
					cfg.NetSize, cfg.BlockSize, cfg.SubBlockSize = 64, 4, 2
				default:
					cfg.NetSize, cfg.BlockSize, cfg.SubBlockSize = 1024, 16, 8
				}
				prof, ok := synth.ProfileByName(names[i])
				if !ok {
					return artifact{}, fmt.Errorf("workload %s missing", names[i])
				}
				prof.Seed += uint64(i * 101) // distinct tasks even with repeated names
				g, err := synth.NewGenerator(prof, perProc)
				if err != nil {
					return artifact{}, err
				}
				words, err := trace.SplitAll(g, 2)
				if err != nil {
					return artifact{}, err
				}
				procs[i] = busim.Processor{Name: fmt.Sprintf("%s/%d", names[i], i), Config: cfg, Accesses: words}
			}
			res, err := busim.Run(busim.Config{CacheCycles: 1, BusCyclesPerWord: 4}, procs)
			if err != nil {
				return artifact{}, err
			}
			cells = append(cells, fmt.Sprintf("%.3f", res.Throughput))
			if n == 8 {
				util8 = res.BusUtilization
			}
		}
		cells = append(cells, fmt.Sprintf("%.2f", util8))
		t.Add(cells...)
	}
	note := "\nThroughput = aggregate word accesses per cycle.  With low-traffic\n" +
		"caches throughput scales with the processor count until the bus\n" +
		"saturates; the traffic-ratio>1 organisation saturates immediately --\n" +
		"the discrete-event confirmation of the paper's S1 argument and of\n" +
		"the analytic model in examples/multibus.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}
