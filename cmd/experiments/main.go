// Command experiments regenerates every table and figure of Hill &
// Smith (ISCA 1984) from the synthetic workload suites, writing each
// artifact to the results directory as aligned text and CSV.
//
// Usage:
//
//	experiments [-refs N] [-out DIR] [-run LIST] [-engine ENGINE] [-shards N] [-list] [-ascii]
//	            [-pprof ADDR] [-cpuprofile FILE] [-memprofile FILE]
//	            [-events FILE] [-manifest FILE] [-progress]
//
// where LIST is a comma-separated subset of the experiment ids printed
// by -list (default "all").  The paper's runs use one million references
// per trace (-refs 1000000, the default).  ENGINE selects the sweep
// simulation engine: "multipass" (default) evaluates each workload's
// whole configuration family in a single trace pass, "stackdist"
// collapses further to one stack-distance recency list per block size
// (still one pass, fewest simulated lanes), "reference" replays the
// trace once per configuration; all three produce byte-identical
// artifacts (a regression test enforces it).  -shards
// sets the intra-workload shard count of the streaming executor (0,
// the default, picks a machine-appropriate value; the shard count
// never changes the artifacts, only the wall clock).
//
// The shared observability bundle (internal/telemetry) adds profiling
// (-pprof, -cpuprofile, -memprofile), a structured JSONL event stream
// (-events), a RUN.json run manifest (-manifest) and a live progress
// line (-progress).  All are off by default and none changes the
// artifacts; see docs/OBSERVABILITY.md.
//
// SIGINT/SIGTERM interrupt cleanly: in-flight sweeps stop at their
// next chunk boundary, the event stream is flushed and closed (ending
// on the terminal run-end event), RUN.json records interrupted: true,
// the checkpoint journal keeps every completed workload for a resumed
// rerun, and the process exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"subcache/internal/sweep"
	"subcache/internal/telemetry"
)

func main() {
	var (
		refs   = flag.Int("refs", 1000000, "references per workload trace")
		out    = flag.String("out", "results", "output directory")
		run    = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		engine = flag.String("engine", "multipass", "sweep engine: multipass, stackdist or reference")
		shards = flag.Int("shards", 0, "shard workers per workload (0 = auto, <0 = materialised baseline)")
		ckpt   = flag.String("checkpoint", "", "journal `file`: record each finished workload sweep and, on a rerun, resume past the recorded ones (ablations with config overrides always re-run)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		ascii  = flag.Bool("ascii", false, "also print ASCII renderings of figures")
	)
	tf := telemetry.RegisterFlags(flag.CommandLine)
	tf.RegisterSweepFlags(flag.CommandLine)
	flag.Parse()

	eng, err := sweep.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.id, e.title)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	sess, err := tf.Start("experiments", telemetry.Fingerprint(
		fmt.Sprint("refs=", *refs), fmt.Sprint("run=", *run),
		fmt.Sprint("engine=", eng)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	sess.Manifest.Engine = eng.String()
	sess.Manifest.Shards = *shards

	want := map[string]bool{}
	all := *run == "all"
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}

	// SIGINT/SIGTERM cancel the shared context: every sweep stops at
	// its next chunk boundary, the event sink is flushed and closed on
	// the way out, RUN.json records interrupted: true, and the process
	// exits non-zero.  The checkpoint journal already ends on a clean
	// fsynced record (each workload is journalled as it finishes), so a
	// rerun resumes past the completed sweeps.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ctx := newRunCtx(sigCtx, *refs, eng, *shards, *ckpt)
	ctx.recorder = sess.Recorder()
	failed := false
	var ran []experiment
	for _, e := range experiments {
		if !all && !want[e.id] {
			continue
		}
		if sigCtx.Err() != nil {
			break
		}
		start := time.Now()
		fmt.Printf("== %s: %s\n", e.id, e.title)
		art, err := e.run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			failed = true
			continue
		}
		if err := writeArtifact(*out, e.id, art, *ascii); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			failed = true
			continue
		}
		ran = append(ran, e)
		fmt.Printf("   done in %v -> %s/%s.txt\n", time.Since(start).Round(time.Millisecond), *out, e.id)
	}
	if len(ran) > 0 {
		if err := writeIndex(*out, *refs, ran); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: index: %v\n", err)
			failed = true
		}
	}
	if sigCtx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; completed artifacts and the checkpoint journal are intact")
		sess.Manifest.Interrupted = true
		failed = true
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: telemetry:", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// writeIndex records what was generated and with what parameters, so a
// results directory is self-describing.
func writeIndex(dir string, refs int, ran []experiment) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Results index\n\n")
	fmt.Fprintf(&b, "Generated by `cmd/experiments` with %d references per workload.\n\n", refs)
	fmt.Fprintf(&b, "| id | artifact | files |\n|---|---|---|\n")
	for _, e := range ran {
		files := fmt.Sprintf("`%s.txt`", e.id)
		if _, err := os.Stat(filepath.Join(dir, e.id+".csv")); err == nil {
			files += fmt.Sprintf(", `%s.csv`", e.id)
		}
		if _, err := os.Stat(filepath.Join(dir, e.id+".svg")); err == nil {
			files += fmt.Sprintf(", `%s.svg`", e.id)
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", e.id, e.title, files)
	}
	return os.WriteFile(filepath.Join(dir, "INDEX.md"), []byte(b.String()), 0o644)
}

// artifact is one experiment's output: human text plus optional CSV
// and SVG renderings.
type artifact struct {
	text string
	csv  string
	svg  string
}

func writeArtifact(dir, id string, art artifact, ascii bool) error {
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), []byte(art.text), 0o644); err != nil {
		return err
	}
	if art.csv != "" {
		if err := os.WriteFile(filepath.Join(dir, id+".csv"), []byte(art.csv), 0o644); err != nil {
			return err
		}
	}
	if art.svg != "" {
		if err := os.WriteFile(filepath.Join(dir, id+".svg"), []byte(art.svg), 0o644); err != nil {
			return err
		}
	}
	if ascii {
		fmt.Println(art.text)
	}
	return nil
}
