package main

import (
	"fmt"
	"sort"

	"subcache/internal/cache"
	"subcache/internal/report"
	"subcache/internal/sweep"
	"subcache/internal/synth"
)

// figExperiment builds the runner for one of Figures 1-8: an
// architecture's miss-versus-traffic plot over the Table 1 grid at three
// net sizes, optionally with nibble-mode scaling (Figures 7 and 8).
func figExperiment(arch synth.Arch, nets []int, scaled bool) func(*runCtx) (artifact, error) {
	return func(ctx *runCtx) (artifact, error) {
		res, err := ctx.gridSweep(arch, nets)
		if err != nil {
			return artifact{}, err
		}
		title := fmt.Sprintf("%s miss ratio vs traffic ratio, net sizes %v", arch, nets)
		if scaled {
			title = fmt.Sprintf("%s miss ratio vs nibble-mode scaled traffic ratio, net sizes %v", arch, nets)
		}
		fig := report.MissVsTraffic(res, nets, scaled, title)
		return artifact{text: fig.ASCII(76, 24), csv: fig.CSV(), svg: fig.SVG(860, 640)}, nil
	}
}

// runFigure9 reproduces the load-forward figure: 64- and 256-byte caches
// on the Z8000 compiler traces, with the Z80,000 design point
// (b16-s2-LF, gross 328 bytes) called out.
func runFigure9(ctx *runCtx) (artifact, error) {
	res, err := ctx.lfSweep()
	if err != nil {
		return artifact{}, err
	}
	fig := &report.Figure{
		Title:  "Load-forward results, net 64 and 256 bytes (Z8000 CCP/C1/C2)",
		XLabel: "traffic ratio",
		YLabel: "miss ratio",
	}
	// One series per (net, block), points ordered by traffic so the
	// plotted lines read like the paper's connected curves.
	type key struct{ net, block int }
	series := map[key][]report.XY{}
	for _, p := range res.Points() {
		s := res.Summaries[p]
		label := p.String()
		if p.Fetch == 0 && p.Block == 16 && p.Sub == 2 {
			label += fmt.Sprintf(" g%0.f", p.Config(synth.Z8000).GrossSize())
		}
		k := key{p.Net, p.Block}
		series[k] = append(series[k], report.XY{X: s.Traffic, Y: s.Miss, Label: label})
	}
	var keys []key
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].net != keys[j].net {
			return keys[i].net < keys[j].net
		}
		return keys[i].block < keys[j].block
	})
	for _, k := range keys {
		pts := series[k]
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		fig.Series = append(fig.Series, report.Series{
			Name:   fmt.Sprintf("net%d b%d", k.net, k.block),
			Points: pts,
		})
	}

	// Headline deltas at the Z80,000 point (256-byte cache, 16-byte
	// blocks): LF versus whole-block fill and versus plain sub-blocks.
	wb := res.Summaries[sweep.Point{Net: 256, Block: 16, Sub: 16}]
	lf := res.Summaries[sweep.Point{Net: 256, Block: 16, Sub: 2, Fetch: cache.LoadForward}]
	sb := res.Summaries[sweep.Point{Net: 256, Block: 16, Sub: 2}]
	note := fmt.Sprintf(
		"\nZ80,000 point (256B, 16-byte blocks): whole-block miss=%.3f traffic=%.3f;"+
			"\nLF miss=%.3f traffic=%.3f; sub-block-only miss=%.3f traffic=%.3f."+
			"\nPaper: LF cuts traffic ~20%% vs whole-block for ~7%% more misses.\n",
		wb.Miss, wb.Traffic, lf.Miss, lf.Traffic, sb.Miss, sb.Traffic)
	return artifact{text: fig.ASCII(76, 24) + note, csv: fig.CSV(), svg: fig.SVG(860, 640)}, nil
}
