package main

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"subcache/internal/cache"
	"subcache/internal/paperdata"
	"subcache/internal/report"
	"subcache/internal/sweep"
	"subcache/internal/synth"
)

// runTable6 reproduces the paper's Table 6: the IBM 360/85 sector
// organisation (16 fully-associative 1024-byte sectors, 64-byte
// sub-blocks) against 4/8/16-way set-associative caches with 64-byte
// blocks, all 16 KB, on the System/370 suite (our stand-in for the
// paper's System/360 workload).  Also reports the fraction of sector
// sub-blocks never referenced while resident (paper: 72%).
func runTable6(ctx *runCtx) (artifact, error) {
	type org struct {
		name  string
		point sweep.Point
		assoc int
	}
	orgs := []org{
		{"360/85 sector", sweep.Point{Net: 16384, Block: 1024, Sub: 64}, 16},
		{"4-way, 64B blocks", sweep.Point{Net: 16384, Block: 64, Sub: 64}, 4},
		{"8-way, 64B blocks", sweep.Point{Net: 16384, Block: 64, Sub: 64}, 8},
		{"16-way, 64B blocks", sweep.Point{Net: 16384, Block: 64, Sub: 64}, 16},
	}
	t := report.NewTable("Table 6. 360/85 sector cache vs set-associative mapping (16 KB, LRU)",
		"organisation", "miss", "relative", "untouched sub-blocks", "paper miss", "paper relative")
	paperMiss := []float64{paperdata.Table6.Sector360, paperdata.Table6.Way4,
		paperdata.Table6.Way8, paperdata.Table6.Way16}

	var base float64
	for i, o := range orgs {
		assoc := o.assoc
		res, err := ctx.run(sweep.Request{
			Arch:   synth.S370,
			Points: []sweep.Point{o.point},
			Refs:   ctx.refs,
			Engine: ctx.engine, Shards: ctx.shards,
			Override: func(c *cache.Config) {
				c.Assoc = assoc
			},
		})
		if err != nil {
			return artifact{}, err
		}
		s := res.Summaries[o.point]
		if i == 0 {
			base = s.Miss
		}
		rel := 0.0
		if base > 0 {
			rel = s.Miss / base
		}
		untouched := ""
		if o.point.Block > o.point.Sub {
			untouched = fmt.Sprintf("%.2f", 1-s.Utilization)
		}
		t.Add(o.name,
			fmt.Sprintf("%.4f", s.Miss),
			fmt.Sprintf("%.3f", rel),
			untouched,
			fmt.Sprintf("%.4f", paperMiss[i]),
			fmt.Sprintf("%.3f", paperMiss[i]/paperMiss[0]))
	}
	note := "\nPaper finds the sector cache ~3x worse than 4-way set-associative\n" +
		"and 72% of sector sub-blocks never referenced while resident.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}

// runTable7 reproduces the paper's Table 7 over all four architectures
// at net sizes 64, 256 and 1024 bytes.
func runTable7(ctx *runCtx) (artifact, error) {
	nets := []int{64, 256, 1024}
	results := map[synth.Arch]*sweep.Result{}
	for _, a := range synth.AllArchs() {
		res, err := ctx.gridSweep(a, nets)
		if err != nil {
			return artifact{}, err
		}
		results[a] = res
	}
	t := report.Table7(results)
	return artifact{text: t.String(), csv: t.CSV()}, nil
}

// table8Points lists the organisations of the paper's Table 8.
func table8Points() []sweep.Point {
	return []sweep.Point{
		{Net: 64, Block: 8, Sub: 8},
		{Net: 64, Block: 8, Sub: 2, Fetch: cache.LoadForward},
		{Net: 64, Block: 8, Sub: 2},
		{Net: 64, Block: 2, Sub: 2},
		{Net: 256, Block: 16, Sub: 16},
		{Net: 256, Block: 16, Sub: 2, Fetch: cache.LoadForward},
		{Net: 256, Block: 16, Sub: 2},
		{Net: 256, Block: 8, Sub: 8},
		{Net: 256, Block: 8, Sub: 2, Fetch: cache.LoadForward},
		{Net: 256, Block: 8, Sub: 2},
		{Net: 256, Block: 2, Sub: 2},
	}
}

// lfSweep runs the Table 8 organisations over the Z8000 compiler traces.
func (c *runCtx) lfSweep() (*sweep.Result, error) {
	c.mu.Lock()
	if r, ok := c.sweeps["lf"]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	res, err := c.run(sweep.Request{
		Arch:   synth.Z8000,
		Points: table8Points(),
		Refs:   c.refs,
		Engine: c.engine, Shards: c.shards,
		Workloads: []string{"CCP", "C1", "C2"},
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.sweeps["lf"] = res
	c.mu.Unlock()
	return res, nil
}

// runTable8 reproduces the load-forward study on traces CCP, C1, C2.
func runTable8(ctx *runCtx) (artifact, error) {
	res, err := ctx.lfSweep()
	if err != nil {
		return artifact{}, err
	}
	t := report.Table8(res)

	// Append the paper's values for the same rows.
	p := report.NewTable("Paper Table 8 (for comparison)",
		"net", "blk,sub", "LF", "paper miss", "paper traffic")
	var keys []paperdata.LFKey
	for k := range paperdata.Table8 {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		if a.Block != b.Block {
			return a.Block > b.Block
		}
		if a.Sub != b.Sub {
			return a.Sub > b.Sub
		}
		return a.LoadForward && !b.LoadForward
	})
	for _, k := range keys {
		c := paperdata.Table8[k]
		lf := ""
		if k.LoadForward {
			lf = "LF"
		}
		p.Add(fmt.Sprint(k.Net), fmt.Sprintf("%d,%d", k.Block, k.Sub), lf,
			fmt.Sprintf("%.3f", c.Miss), fmt.Sprintf("%.3f", c.Traffic))
	}
	return artifact{text: t.String() + "\n" + p.String(), csv: t.CSV()}, nil
}

// runCompare prints measured-versus-paper ratios for every transcribed
// Table 7 anchor cell, plus aggregate reproduction-quality statistics
// (geometric-mean ratio and ordering agreement); EXPERIMENTS.md is
// built from this artifact.
func runCompare(ctx *runCtx) (artifact, error) {
	nets := []int{64, 256, 1024}
	t := report.NewTable("Paper vs measured (Table 7 anchors)",
		"arch", "net", "blk,sub", "paper miss", "got miss", "ratio",
		"paper traffic", "got traffic", "ratio")

	var logSumMiss, logSumTraffic float64
	var n int
	var concordant, pairs int

	for _, a := range synth.AllArchs() {
		res, err := ctx.gridSweep(a, nets)
		if err != nil {
			return artifact{}, err
		}
		cells := paperdata.Table7[a]
		var keys []paperdata.Key
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			x, y := keys[i], keys[j]
			if x.Net != y.Net {
				return x.Net < y.Net
			}
			if x.Block != y.Block {
				return x.Block > y.Block
			}
			return x.Sub > y.Sub
		})
		type mp struct{ paper, got float64 }
		var series []mp
		for _, k := range keys {
			pt := sweep.Point{Net: k.Net, Block: k.Block, Sub: k.Sub}
			s, ok := res.Summaries[pt]
			if !ok {
				continue
			}
			c := cells[k]
			t.Add(a.String(), fmt.Sprint(k.Net), fmt.Sprintf("%d,%d", k.Block, k.Sub),
				fmt.Sprintf("%.4f", c.Miss), fmt.Sprintf("%.4f", s.Miss),
				fmt.Sprintf("%.2f", s.Miss/c.Miss),
				fmt.Sprintf("%.4f", c.Traffic), fmt.Sprintf("%.4f", s.Traffic),
				fmt.Sprintf("%.2f", s.Traffic/c.Traffic))
			logSumMiss += math.Log(s.Miss / c.Miss)
			logSumTraffic += math.Log(s.Traffic / c.Traffic)
			n++
			series = append(series, mp{c.Miss, s.Miss})
		}
		// Ordering agreement within the architecture: over all pairs of
		// anchors, does the simulation order the miss ratios the same
		// way the paper does?
		for i := 0; i < len(series); i++ {
			for j := i + 1; j < len(series); j++ {
				if series[i].paper == series[j].paper {
					continue
				}
				pairs++
				if (series[i].paper < series[j].paper) == (series[i].got < series[j].got) {
					concordant++
				}
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.String())
	if n > 0 {
		fmt.Fprintf(&b, "\nanchors: %d\n", n)
		fmt.Fprintf(&b, "geometric mean got/paper: miss %.3f, traffic %.3f\n",
			math.Exp(logSumMiss/float64(n)), math.Exp(logSumTraffic/float64(n)))
	}
	if pairs > 0 {
		fmt.Fprintf(&b, "pairwise miss-ratio ordering agreement with paper: %.1f%% (%d/%d)\n",
			100*float64(concordant)/float64(pairs), concordant, pairs)
	}
	return artifact{text: b.String(), csv: t.CSV()}, nil
}

// runOptimalSubBlock checks §4.3's claim: under the nibble-mode cost
// model the traffic-optimal sub-block size roughly doubles relative to
// the linear model.
func runOptimalSubBlock(ctx *runCtx) (artifact, error) {
	res, err := ctx.gridSweep(synth.PDP11, []int{64, 256, 1024})
	if err != nil {
		return artifact{}, err
	}
	t := report.NewTable("Traffic-optimal sub-block size, linear vs nibble cost (PDP-11)",
		"net", "block", "best sub (linear)", "best sub (nibble)", "ratio")
	type key struct{ net, block int }
	bestLin := map[key]int{}
	bestNib := map[key]int{}
	minLin := map[key]float64{}
	minNib := map[key]float64{}
	for p, s := range res.Summaries {
		k := key{p.Net, p.Block}
		if v, ok := minLin[k]; !ok || s.Traffic < v {
			minLin[k], bestLin[k] = s.Traffic, p.Sub
		}
		if v, ok := minNib[k]; !ok || s.Scaled < v {
			minNib[k], bestNib[k] = s.Scaled, p.Sub
		}
	}
	var keys []key
	for k := range bestLin {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].net != keys[j].net {
			return keys[i].net < keys[j].net
		}
		return keys[i].block < keys[j].block
	})
	for _, k := range keys {
		if bestLin[k] == k.block && bestNib[k] == k.block {
			continue // a single sub-block choice: no tradeoff to report
		}
		t.Add(fmt.Sprint(k.net), fmt.Sprint(k.block),
			fmt.Sprint(bestLin[k]), fmt.Sprint(bestNib[k]),
			fmt.Sprintf("%.1f", float64(bestNib[k])/float64(bestLin[k])))
	}
	note := "\nPaper (S4.3): \"the optimum sub-block size ... approximately doubles\"\n" +
		"under nibble-mode cost relative to the standard memory interface.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}
