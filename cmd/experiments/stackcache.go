package main

// The stack-cache experiment: §2.2's last "smart cache" idea --
// "Alternatively, the tops of certain stacks in a programming
// environment could be cached."  We compare spending a fixed small
// byte budget on (a) a general cache serving all references, versus
// (b) a dedicated stack cache plus a general cache for the rest, at
// equal total bytes.

import (
	"fmt"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/report"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func init() {
	experiments = append(experiments,
		experiment{"stackcache", "Extension: dedicated stack cache (S2.2 smart-cache idea)", runStackCache},
	)
}

// stackBase mirrors internal/synth's region layout: references at or
// above it are stack references.  (A real implementation would compare
// against the stack-pointer register; the simulator identifies the
// region instead.)
const stackRegionBase = 0x0080_0000

func runStackCache(ctx *runCtx) (artifact, error) {
	t := report.NewTable("Dedicated stack cache vs unified (PDP-11 suite, equal total bytes)",
		"total bytes", "unified miss", "split miss", "stack cache miss", "stack refs")
	profiles := synth.Workloads(synth.PDP11)
	for _, total := range []int{128, 256, 512} {
		var uMiss, sMiss, stMiss, stFrac float64
		for _, prof := range profiles {
			g, err := synth.NewGenerator(prof, ctx.refs)
			if err != nil {
				return artifact{}, err
			}
			words, err := trace.SplitAll(g, 2)
			if err != nil {
				return artifact{}, err
			}
			unified, err := cache.New(cache.Config{NetSize: total, BlockSize: 8,
				SubBlockSize: 4, Assoc: 4, WordSize: 2})
			if err != nil {
				return artifact{}, err
			}
			// The split system: a small fully-associative stack cache
			// (stacks are tiny and hot) plus a general cache, half the
			// byte budget each.
			stackSize := total / 2
			stack, err := cache.New(cache.Config{NetSize: stackSize, BlockSize: 8,
				SubBlockSize: 4, Assoc: stackSize / 8, WordSize: 2})
			if err != nil {
				return artifact{}, err
			}
			general, err := cache.New(cache.Config{NetSize: total - stackSize, BlockSize: 8,
				SubBlockSize: 4, Assoc: 4, WordSize: 2})
			if err != nil {
				return artifact{}, err
			}
			var stackRefs, allRefs uint64
			for _, r := range words {
				unified.Access(r)
				if r.Kind.Countable() {
					allRefs++
				}
				if r.Addr >= addr.Addr(stackRegionBase) {
					stack.Access(r)
					if r.Kind.Countable() {
						stackRefs++
					}
				} else {
					general.Access(r)
				}
			}
			var split cache.Stats
			split.Add(stack.Stats())
			split.Add(general.Stats())
			uMiss += unified.Stats().MissRatio()
			sMiss += split.MissRatio()
			stMiss += stack.Stats().MissRatio()
			stFrac += float64(stackRefs) / float64(allRefs)
		}
		n := float64(len(profiles))
		t.Add(fmt.Sprint(total),
			fmt.Sprintf("%.4f", uMiss/n),
			fmt.Sprintf("%.4f", sMiss/n),
			fmt.Sprintf("%.4f", stMiss/n),
			fmt.Sprintf("%.0f%%", 100*stFrac/n))
	}
	note := "\nS2.2: \"the tops of certain stacks in a programming environment\n" +
		"could be cached.\"  The stack working set is tiny and hot -- the\n" +
		"dedicated cache hits ~99% -- but stack references are only ~5% of\n" +
		"this suite's stream, so halving the general cache costs far more\n" +
		"than the stack cache saves: the unified cache wins.  The idea pays\n" +
		"only where the language runtime makes stack traffic dominant --\n" +
		"one reason it stayed a suggestion in the paper.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}
