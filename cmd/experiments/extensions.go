package main

// Extension experiments: the paper's qualitative discussions (§2.2
// instruction buffers, §2.3 RISC II) and its flagged further studies
// (§3.1: split I/D caches, write-through vs copy-back), quantified with
// the same harness.

import (
	"fmt"

	"subcache/internal/cache"
	"subcache/internal/ibuffer"
	"subcache/internal/report"
	"subcache/internal/riscii"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func init() {
	experiments = append(experiments,
		experiment{"ibuf", "Extension: instruction buffers vs minimum cache (S2.2)", runIBuffer},
		experiment{"riscii", "Extension: RISC II instruction cache (S2.3)", runRISCII},
		experiment{"split", "Extension: split I/D caches vs unified (S3.1 further study)", runSplit},
		experiment{"writepol", "Extension: write-through vs copy-back traffic (S3.1 further study)", runWritePolicy},
	)
}

// runIBuffer compares the paper's §2.2 alternatives on instruction
// fetches: a VAX-style sequential buffer, CRAY-style loop buffers, and
// caches of comparable cost, on the PDP-11 suite.
func runIBuffer(ctx *runCtx) (artifact, error) {
	t := report.NewTable("Instruction-stream alternatives (PDP-11 suite, ifetches only)",
		"organisation", "bytes", "miss/fetch", "traffic")

	type accum struct {
		name          string
		bytes         int
		miss, traffic float64
	}
	var rows []*accum
	add := func(name string, bytes int, miss, traffic float64) {
		for _, r := range rows {
			if r.name == name && r.bytes == bytes {
				r.miss += miss
				r.traffic += traffic
				return
			}
		}
		rows = append(rows, &accum{name: name, bytes: bytes, miss: miss, traffic: traffic})
	}

	profiles := synth.Workloads(synth.PDP11)
	for _, prof := range profiles {
		g, err := synth.NewGenerator(prof, ctx.refs)
		if err != nil {
			return artifact{}, err
		}
		words, err := trace.SplitAll(g, 2)
		if err != nil {
			return artifact{}, err
		}

		seq, err := ibuffer.NewSequential(2)
		if err != nil {
			return artifact{}, err
		}
		if err := ibuffer.Run(seq, trace.NewSliceSource(words)); err != nil {
			return artifact{}, err
		}
		add("VAX-style sequential buffer", 8, seq.Stats().MissRatio(), seq.Stats().TrafficRatio())

		loop, err := ibuffer.NewLoop(4, 128, 2)
		if err != nil {
			return artifact{}, err
		}
		if err := ibuffer.Run(loop, trace.NewSliceSource(words)); err != nil {
			return artifact{}, err
		}
		add("CRAY-style 4x128B loop buffers", 512, loop.Stats().MissRatio(), loop.Stats().TrafficRatio())

		for _, net := range []int{64, 512} {
			cfg := cache.Config{NetSize: net, BlockSize: 8, SubBlockSize: 4,
				Assoc: 4, WordSize: 2}
			c, err := cache.New(cfg)
			if err != nil {
				return artifact{}, err
			}
			for _, r := range words {
				if r.Kind == trace.IFetch {
					c.Access(r)
				}
			}
			add(fmt.Sprintf("%dB cache 8,4 4-way", net), net,
				c.Stats().MissRatio(), c.Stats().TrafficRatio())
		}
	}
	n := float64(len(profiles))
	for _, r := range rows {
		t.Add(r.name, fmt.Sprint(r.bytes),
			fmt.Sprintf("%.4f", r.miss/n), fmt.Sprintf("%.4f", r.traffic/n))
	}
	note := "\nPaper S2.2: simple buffers reduce latency but not bandwidth\n" +
		"(traffic ~1.0); buffers recognising branch targets (CRAY-1) hold\n" +
		"loops; a small cache dominates both per byte.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}

// runRISCII reproduces the §2.3 RISC II instruction-cache study: miss
// ratio versus size, the remote program counter's prediction accuracy
// and access-time reduction, and the effect of code compaction.
func runRISCII(ctx *runCtx) (artifact, error) {
	refs, err := synth.Generate(riscii.Workload(11), ctx.refs)
	if err != nil {
		return artifact{}, err
	}
	t := report.NewTable("RISC II instruction cache (direct-mapped, 8B blocks)",
		"size", "miss", "paper miss", "miss (compacted)", "improvement")
	paper := map[int]float64{512: 0.148, 1024: 0.125, 2048: 0.098, 4096: 0.078}
	comp, err := riscii.NewCompactor(0x1000, riscii.Workload(11).CodeSize+64, 4, 0.4, 11)
	if err != nil {
		return artifact{}, err
	}
	for _, size := range []int{512, 1024, 2048, 4096} {
		plain, err := riscii.Evaluate(riscii.ICacheConfig{Size: size},
			trace.NewSliceSource(refs), nil, nil)
		if err != nil {
			return artifact{}, err
		}
		compacted, err := riscii.Evaluate(riscii.ICacheConfig{Size: size},
			trace.NewSliceSource(refs), comp, nil)
		if err != nil {
			return artifact{}, err
		}
		t.Add(fmt.Sprint(size),
			fmt.Sprintf("%.4f", plain.MissRatio),
			fmt.Sprintf("%.3f", paper[size]),
			fmt.Sprintf("%.4f", compacted.MissRatio),
			fmt.Sprintf("%.1f%%", 100*(1-compacted.MissRatio/plain.MissRatio)))
	}

	rpc, err := riscii.NewRemotePC(4)
	if err != nil {
		return artifact{}, err
	}
	res, err := riscii.Evaluate(riscii.ICacheConfig{}, trace.NewSliceSource(refs), nil, rpc)
	if err != nil {
		return artifact{}, err
	}
	note := fmt.Sprintf(
		"\nremote PC: %.1f%% of next addresses predicted (chip: 89.9%%);\n"+
			"with 47%% access overlap that is a %.1f%% access-time cut (chip: 42.2%%).\n"+
			"code compaction: %.1f%% static size saving (chip: ~20%%).\n",
		100*res.PredictionAccuracy,
		100*riscii.AccessTimeReduction(res.PredictionAccuracy, 0.47),
		100*comp.StaticSavings())
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}

// runSplit compares a unified cache against split instruction/data
// caches of the same total net size, one of the paper's suggested
// further studies.
func runSplit(ctx *runCtx) (artifact, error) {
	t := report.NewTable("Split I/D vs unified caches (PDP-11 suite, 16-byte blocks, 8-byte sub-blocks)",
		"total bytes", "unified miss", "split miss (I+D)", "unified traffic", "split traffic")
	profiles := synth.Workloads(synth.PDP11)
	for _, total := range []int{256, 512, 1024} {
		var uMiss, uTraf, sMiss, sTraf float64
		for _, prof := range profiles {
			g, err := synth.NewGenerator(prof, ctx.refs)
			if err != nil {
				return artifact{}, err
			}
			words, err := trace.SplitAll(g, 2)
			if err != nil {
				return artifact{}, err
			}
			mk := func(net int) (*cache.Cache, error) {
				return cache.New(cache.Config{NetSize: net, BlockSize: 16,
					SubBlockSize: 8, Assoc: 4, WordSize: 2})
			}
			unified, err := mk(total)
			if err != nil {
				return artifact{}, err
			}
			icache, err := mk(total / 2)
			if err != nil {
				return artifact{}, err
			}
			dcache, err := mk(total / 2)
			if err != nil {
				return artifact{}, err
			}
			for _, r := range words {
				unified.Access(r)
				if r.Kind == trace.IFetch {
					icache.Access(r)
				} else {
					dcache.Access(r)
				}
			}
			us := unified.Stats()
			var split cache.Stats
			split.Add(icache.Stats())
			split.Add(dcache.Stats())
			uMiss += us.MissRatio()
			uTraf += us.TrafficRatio()
			sMiss += split.MissRatio()
			sTraf += split.TrafficRatio()
		}
		n := float64(len(profiles))
		t.Add(fmt.Sprint(total),
			fmt.Sprintf("%.4f", uMiss/n), fmt.Sprintf("%.4f", sMiss/n),
			fmt.Sprintf("%.4f", uTraf/n), fmt.Sprintf("%.4f", sTraf/n))
	}
	note := "\nPaper S3.1: \"Further studies should look at partitioning\n" +
		"instruction and data caches...\"  At these tiny sizes a unified\n" +
		"cache usually wins on miss ratio (it balances I/D demand\n" +
		"dynamically) while splitting buys implementation bandwidth.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}

// runWritePolicy quantifies write-through vs copy-back store traffic,
// the paper's other further study, on all four suites, at two dirty
// granularities: 8-byte sub-blocks and single-word sub-blocks.
func runWritePolicy(ctx *runCtx) (artifact, error) {
	t := report.NewTable("Write-through vs copy-back store traffic (1024B, 16-byte blocks, 4-way)",
		"arch", "stores/1000 refs", "WT words/store", "CB words/store (sub=8)", "CB words/store (sub=word)")
	for _, a := range synth.AllArchs() {
		var wtPer, cb8Per, cbWordPer, storeFrac float64
		profiles := synth.Workloads(a)
		for _, prof := range profiles {
			g, err := synth.NewGenerator(prof, ctx.refs)
			if err != nil {
				return artifact{}, err
			}
			words, err := trace.SplitAll(g, a.WordSize())
			if err != nil {
				return artifact{}, err
			}
			run := func(copyBack bool, sub int) (*cache.Stats, error) {
				c, err := cache.New(cache.Config{NetSize: 1024, BlockSize: 16,
					SubBlockSize: sub, Assoc: 4, WordSize: a.WordSize(),
					CopyBack: copyBack})
				if err != nil {
					return nil, err
				}
				for _, r := range words {
					c.Access(r)
				}
				c.FlushUsage()
				return c.Stats(), nil
			}
			wt, err := run(false, 8)
			if err != nil {
				return artifact{}, err
			}
			cb8, err := run(true, 8)
			if err != nil {
				return artifact{}, err
			}
			cbWord, err := run(true, a.WordSize())
			if err != nil {
				return artifact{}, err
			}
			wtPer += wt.WriteTrafficPerStore()
			cb8Per += cb8.WriteTrafficPerStore()
			cbWordPer += cbWord.WriteTrafficPerStore()
			storeFrac += 1000 * float64(wt.WriteAccesses) /
				float64(wt.Accesses+wt.WriteAccesses)
		}
		n := float64(len(profiles))
		t.Add(a.String(),
			fmt.Sprintf("%.0f", storeFrac/n),
			fmt.Sprintf("%.3f", wtPer/n),
			fmt.Sprintf("%.3f", cb8Per/n),
			fmt.Sprintf("%.3f", cbWordPer/n))
	}
	note := "\nWrite-through sends every store to memory (1 word/store).\n" +
		"Copy-back coalesces stores into dirty sub-blocks but must write the\n" +
		"whole sub-block back: with 8-byte sub-blocks the granularity penalty\n" +
		"usually exceeds the coalescing gain at these tiny caches -- one\n" +
		"reason early microprocessors shipped write-through -- while at\n" +
		"word-granularity dirty tracking copy-back always wins.  Store traffic\n" +
		"is reported separately and never enters the paper's read-only ratios.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}
