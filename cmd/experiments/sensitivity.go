package main

// The generator-sensitivity experiment: DESIGN.md's substitution of
// synthetic workloads for the 1984 traces rests on the claim that the
// generator's locality knobs control the same phenomena the paper
// measures.  This experiment perturbs one knob at a time and shows the
// response of the miss-ratio-versus-size curve, documenting which knob
// moves which part of the curve.

import (
	"fmt"

	"subcache/internal/cache"
	"subcache/internal/report"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func init() {
	experiments = append(experiments,
		experiment{"sensitivity", "Validation: generator locality-knob sensitivity", runSensitivity},
	)
}

func runSensitivity(ctx *runCtx) (artifact, error) {
	base, ok := synth.ProfileByName("ED")
	if !ok {
		return artifact{}, fmt.Errorf("ED workload missing")
	}
	type knob struct {
		name   string
		effect string
		mutate func(*synth.Profile)
	}
	knobs := []knob{
		{"baseline (ED)", "-", func(p *synth.Profile) {}},
		{"PhaseLoci x2", "larger phase working set", func(p *synth.Profile) { p.PhaseLoci *= 2 }},
		{"PhaseLoci /2", "smaller phase working set", func(p *synth.Profile) { p.PhaseLoci /= 2 }},
		{"MeanRunLen x2", "longer sequential runs (spatial)", func(p *synth.Profile) { p.MeanRunLen *= 2 }},
		{"MeanRunLen /2", "shorter sequential runs", func(p *synth.Profile) { p.MeanRunLen /= 2 }},
		{"PLoop = 0", "no loops (temporal off)", func(p *synth.Profile) { p.PLoop = 0 }},
		{"CodeSize x4", "bigger code footprint", func(p *synth.Profile) { p.CodeSize *= 4; p.HotLoci *= 4 }},
		{"FracStream +rand", "more random data refs", func(p *synth.Profile) {
			p.FracStream = 0
			// The freed fraction defaults to uniform-random data refs.
		}},
	}
	t := report.NewTable("Generator sensitivity (ED variants, 16,8 4-way caches)",
		"perturbation", "expected effect", "miss@64", "miss@256", "miss@1024")
	for _, k := range knobs {
		p := base
		k.mutate(&p)
		if err := p.Validate(); err != nil {
			return artifact{}, fmt.Errorf("knob %s: %w", k.name, err)
		}
		g, err := synth.NewGenerator(p, ctx.refs)
		if err != nil {
			return artifact{}, err
		}
		words, err := trace.SplitAll(g, 2)
		if err != nil {
			return artifact{}, err
		}
		cells := []string{k.name, k.effect}
		for _, net := range []int{64, 256, 1024} {
			c, err := cache.New(cache.Config{NetSize: net, BlockSize: 16,
				SubBlockSize: 8, Assoc: 4, WordSize: 2})
			if err != nil {
				return artifact{}, err
			}
			for _, r := range words {
				c.Access(r)
			}
			cells = append(cells, fmt.Sprintf("%.4f", c.Stats().MissRatio()))
		}
		t.Add(cells...)
	}
	note := "\nReading guide: loops dominate temporal reuse (PLoop=0 nearly\n" +
		"triples the 1KB miss ratio); run length sets the small-cache end\n" +
		"through sub-block spatial hits (halving it helps small caches,\n" +
		"since less unused data is dragged in); replacing streams with\n" +
		"uniform-random refs degrades the large-cache tail; phase size and\n" +
		"code footprint shade the middle.  Each paper phenomenon has a\n" +
		"dedicated, monotone knob -- the evidence behind DESIGN.md's\n" +
		"substitution argument.\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}
