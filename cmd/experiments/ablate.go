package main

import (
	"fmt"

	"subcache/internal/cache"
	"subcache/internal/report"
	"subcache/internal/sweep"
	"subcache/internal/synth"
)

// The ablation experiments exercise the design choices the paper fixes
// rather than sweeps (DESIGN.md section 5): replacement policy,
// associativity, load-forward variant and warm-start accounting.

// runAblateReplacement compares LRU, FIFO and Random replacement on the
// PDP-11 suite.  Strecker's result (cited in the paper's §1.1) says the
// three perform comparably; the paper chooses LRU for simulation
// efficiency.
func runAblateReplacement(ctx *runCtx) (artifact, error) {
	points := []sweep.Point{
		{Net: 256, Block: 8, Sub: 8},
		{Net: 1024, Block: 16, Sub: 8},
	}
	t := report.NewTable("Replacement policy ablation (PDP-11 suite)",
		"config", "LRU miss", "FIFO miss", "Random miss", "max spread")
	miss := map[cache.Replacement]map[sweep.Point]float64{}
	for _, pol := range []cache.Replacement{cache.LRU, cache.FIFO, cache.Random} {
		pol := pol
		res, err := ctx.run(sweep.Request{
			Arch: synth.PDP11, Points: points, Refs: ctx.refs,
			Engine: ctx.engine, Shards: ctx.shards,
			Override: func(c *cache.Config) {
				c.Replacement = pol
				c.RandomSeed = 1984
			},
		})
		if err != nil {
			return artifact{}, err
		}
		miss[pol] = map[sweep.Point]float64{}
		for p, s := range res.Summaries {
			miss[pol][p] = s.Miss
		}
	}
	for _, p := range points {
		l, f, r := miss[cache.LRU][p], miss[cache.FIFO][p], miss[cache.Random][p]
		lo, hi := l, l
		for _, v := range []float64{f, r} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		t.Add(p.String(),
			fmt.Sprintf("%.4f", l), fmt.Sprintf("%.4f", f), fmt.Sprintf("%.4f", r),
			fmt.Sprintf("%.1f%%", 100*(hi-lo)/lo))
	}
	return artifact{text: t.String(), csv: t.CSV()}, nil
}

// runAblateAssoc sweeps associativity 1/2/4/8 at fixed geometry.
// Strecker: improvement from 1 to 2 to 4, little beyond 4 -- the basis
// for the paper fixing 4-way.
func runAblateAssoc(ctx *runCtx) (artifact, error) {
	point := sweep.Point{Net: 1024, Block: 16, Sub: 8}
	t := report.NewTable("Associativity ablation (PDP-11 suite, 1024B 16,8)",
		"assoc", "miss", "traffic", "vs 4-way")
	missByAssoc := map[int]float64{}
	trafByAssoc := map[int]float64{}
	for _, assoc := range []int{1, 2, 4, 8} {
		assoc := assoc
		res, err := ctx.run(sweep.Request{
			Arch: synth.PDP11, Points: []sweep.Point{point}, Refs: ctx.refs,
			Engine: ctx.engine, Shards: ctx.shards,
			Override: func(c *cache.Config) { c.Assoc = assoc },
		})
		if err != nil {
			return artifact{}, err
		}
		s := res.Summaries[point]
		missByAssoc[assoc] = s.Miss
		trafByAssoc[assoc] = s.Traffic
	}
	for _, assoc := range []int{1, 2, 4, 8} {
		t.Add(fmt.Sprint(assoc),
			fmt.Sprintf("%.4f", missByAssoc[assoc]),
			fmt.Sprintf("%.4f", trafByAssoc[assoc]),
			fmt.Sprintf("%.2f", missByAssoc[assoc]/missByAssoc[4]))
	}
	return artifact{text: t.String(), csv: t.CSV()}, nil
}

// runAblateLF compares the paper's redundant load-forward scheme with
// the optimized variant that skips resident sub-blocks.  The paper
// (§4.4) judged the optimization not worth its complexity because few
// loads are redundant.
func runAblateLF(ctx *runCtx) (artifact, error) {
	base := sweep.Point{Net: 256, Block: 16, Sub: 2, Fetch: cache.LoadForward}
	opt := base
	opt.Fetch = cache.LoadForwardOptimized
	res, err := ctx.run(sweep.Request{
		Arch: synth.Z8000, Points: []sweep.Point{base, opt}, Refs: ctx.refs,
		Engine: ctx.engine, Shards: ctx.shards,
		Workloads: []string{"CCP", "C1", "C2"},
	})
	if err != nil {
		return artifact{}, err
	}
	t := report.NewTable("Load-forward variant ablation (Z8000 CCP/C1/C2, 256B 16,2)",
		"variant", "miss", "traffic", "redundant loads / fill")
	for _, p := range []sweep.Point{base, opt} {
		s := res.Summaries[p]
		var red, fills float64
		for _, r := range res.Runs[p] {
			red += float64(r.RedundantLoads)
			fills += float64(r.SubBlockFills)
		}
		frac := 0.0
		if fills > 0 {
			frac = red / fills
		}
		t.Add(p.Fetch.String(),
			fmt.Sprintf("%.4f", s.Miss),
			fmt.Sprintf("%.4f", s.Traffic),
			fmt.Sprintf("%.4f", frac))
	}
	note := "\nPaper: \"results show that few redundant loads were made, there was\n" +
		"not enough gain to justify experimenting with the optimized scheme.\"\n"
	return artifact{text: t.String() + note, csv: t.CSV()}, nil
}

// runAblateWarm contrasts warm-start accounting (the paper's Z8000
// numbers) with cold-start accounting, quantifying the optimism the
// paper acknowledges.
func runAblateWarm(ctx *runCtx) (artifact, error) {
	points := []sweep.Point{
		{Net: 256, Block: 16, Sub: 8},
		{Net: 1024, Block: 16, Sub: 8},
	}
	t := report.NewTable("Warm-start vs cold-start accounting (Z8000 suite)",
		"config", "warm miss", "cold miss", "cold/warm")
	warmRes, err := ctx.run(sweep.Request{Arch: synth.Z8000, Points: points, Refs: ctx.refs, Engine: ctx.engine, Shards: ctx.shards})
	if err != nil {
		return artifact{}, err
	}
	coldRes, err := ctx.run(sweep.Request{
		Arch: synth.Z8000, Points: points, Refs: ctx.refs,
		Engine: ctx.engine, Shards: ctx.shards,
		Override: func(c *cache.Config) { c.WarmStart = false },
	})
	if err != nil {
		return artifact{}, err
	}
	for _, p := range points {
		w, c := warmRes.Summaries[p].Miss, coldRes.Summaries[p].Miss
		t.Add(p.String(), fmt.Sprintf("%.4f", w), fmt.Sprintf("%.4f", c),
			fmt.Sprintf("%.3f", c/w))
	}
	return artifact{text: t.String(), csv: t.CSV()}, nil
}
