package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"subcache/internal/sweep"
)

// TestEngineGoldenArtifacts is the golden regression gate for the
// single-pass sweep kernels: Table 7 and Figures 1-4 -- the paper
// anchors checked by internal/sweep and internal/paperdata -- are
// regenerated with every engine at a reduced trace length, written
// through the same artifact writer cmd/experiments uses for the
// results/ directory, and every emitted file (txt, csv, svg) is
// compared byte for byte.  If the multipass or stack-distance kernel
// drifts from the reference simulator by even one counter anywhere in
// the grid, some cell of these artifacts changes and this test fails.
func TestEngineGoldenArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates five artifacts three times")
	}
	const refs = 4000
	ids := []string{"table7", "fig1", "fig2", "fig3", "fig4"}

	dirs := map[sweep.Engine]string{}
	for _, eng := range []sweep.Engine{sweep.Reference, sweep.MultiPass, sweep.StackDist} {
		dir := t.TempDir()
		dirs[eng] = dir
		ctx := newRunCtx(context.Background(), refs, eng, 0, "")
		for _, id := range ids {
			var ran bool
			for _, e := range experiments {
				if e.id != id {
					continue
				}
				ran = true
				art, err := e.run(ctx)
				if err != nil {
					t.Fatalf("%s engine, %s: %v", eng, id, err)
				}
				if err := writeArtifact(dir, id, art, false); err != nil {
					t.Fatalf("%s engine, %s: %v", eng, id, err)
				}
			}
			if !ran {
				t.Fatalf("experiment %q not in registry", id)
			}
		}
	}

	for _, eng := range []sweep.Engine{sweep.MultiPass, sweep.StackDist} {
		for _, id := range ids {
			for _, ext := range []string{".txt", ".csv", ".svg"} {
				want, errW := os.ReadFile(filepath.Join(dirs[sweep.Reference], id+ext))
				got, errG := os.ReadFile(filepath.Join(dirs[eng], id+ext))
				if os.IsNotExist(errW) && os.IsNotExist(errG) {
					continue // artifact has no rendering of this kind
				}
				if errW != nil || errG != nil {
					t.Errorf("%s%s: read errors: reference=%v %s=%v", id, ext, errW, eng, errG)
					continue
				}
				if string(want) != string(got) {
					t.Errorf("%s%s: %s artifact differs from reference (%d vs %d bytes)",
						id, ext, eng, len(got), len(want))
				}
			}
		}
	}
}
