// Command benchsweep times the sweep engines on the Table 7 grid --
// every architecture, the paper's net sizes, the full block/sub-block
// matrix -- and records wall-clock seconds, trace-replay passes, the
// engine speedup and the shard-scaling curve of the chunk-broadcast
// executor in a JSON file, so the sweep harness's perf trajectory is
// tracked in the repository.
//
// Usage:
//
//	benchsweep [-refs N] [-nets LIST] [-shards LIST] [-verify] [-out FILE]
//	           [-pprof ADDR] [-cpuprofile FILE] [-memprofile FILE]
//	           [-events FILE] [-manifest FILE] [-progress]
//
// The engine comparison times the materialised per-point Reference
// engine against the single-pass MultiPass and StackDist engines,
// recording per-engine ns_per_ref and passes_per_workload so the
// one-pass stack-distance kernel's win over the family kernel is
// tracked alongside the headline pass reduction.  The shard curve then
// times the MultiPass sweep at each shard count in -shards (default
// "1,2,4,...,NumCPU", always at least 1,2,4 so the curve is never a
// single point) with Parallelism pinned to the shard count, so point s
// of the curve uses exactly s cores and the curve isolates
// intra-workload scaling.  An explicit -shards list is honored exactly
// as given; when it (or the padded default on a small machine) asks
// for more shards than CPUs, those points run oversubscribed and the
// record carries shard_curve_truncated: true so downstream consumers
// know the tail of the curve measured contention, not scaling.
// SIGINT/SIGTERM cancel the run at the next chunk boundary: the event
// stream is flushed and closed, RUN.json records interrupted: true,
// and benchsweep exits non-zero.  -verify additionally cross-checks that both
// single-pass engines at shards=-1, 1 and NumCPU reproduce the
// materialised MultiPass baseline bit for bit -- with StackDist making
// exactly one trace pass per workload -- exiting non-zero on any
// mismatch (the CI smoke step runs this).
//
// Alongside wall-clock figures the record carries two kernel-level
// numbers for the MultiPass engine: ns_per_ref (engine seconds over the
// total word references replayed across every workload) and
// allocs_per_ref (heap objects allocated during the timed engine run
// over the same denominator -- ~0 now that the access path is
// allocation-free).  The shared observability bundle
// (internal/telemetry) provides the rest: -cpuprofile/-memprofile write
// pprof profiles of the run for drilling into regressions, -pprof
// serves live profiles over HTTP, -events streams structured telemetry
// events (JSONL), -manifest writes a RUN.json run manifest, and
// -progress prints a live progress line.
//
// The committed BENCH_sweep.json is regenerated with the defaults:
//
//	go run ./cmd/benchsweep
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"subcache/internal/kernelbench"
	"subcache/internal/sweep"
	"subcache/internal/synth"
	"subcache/internal/telemetry"
	"subcache/internal/trace"
)

type engineResult struct {
	Engine string `json:"engine"`
	// Seconds is the median of the -repeat timed runs; SecondsMin and
	// SecondsMax bound the samples so a reader can judge the noise floor
	// behind any before/after claim.
	Seconds     float64 `json:"seconds"`
	SecondsMin  float64 `json:"seconds_min"`
	SecondsMax  float64 `json:"seconds_max"`
	TracePasses int     `json:"trace_passes"`
	// PassesPerWorkload is TracePasses over the total workload count:
	// the grid size for Reference, exactly 1 for the single-pass
	// engines.
	PassesPerWorkload float64 `json:"passes_per_workload"`
	// NsPerRef is this engine's wall-clock nanoseconds per word
	// reference of the full-grid sweep (same denominator for every
	// engine, so the column is directly comparable), from the median
	// run.
	NsPerRef float64 `json:"ns_per_ref"`
	// AllocsPerRef is the median heap-object count allocated during one
	// timed run of this engine, per word reference.
	AllocsPerRef float64 `json:"allocs_per_ref"`
	// KernelHitNs and KernelMissNs microbenchmark the engine kernel
	// directly (no sweep harness): ns per access on a steady-state
	// resident block and on a conflict stream that evicts on every
	// reference.  See kernel.go for the exact geometry and streams.
	KernelHitNs  float64 `json:"kernel_hit_ns"`
	KernelMissNs float64 `json:"kernel_miss_ns"`
}

type shardResult struct {
	Shards  int     `json:"shards"`
	Seconds float64 `json:"seconds"`
	// SpeedupVs1 is wall-clock at shards=1 divided by wall-clock here:
	// the scaling curve of the chunk-broadcast executor.
	SpeedupVs1 float64 `json:"speedup_vs_shards_1"`
}

type record struct {
	Bench         string         `json:"bench"`
	Refs          int            `json:"refs_per_workload"`
	Nets          []int          `json:"nets"`
	Archs         []string       `json:"archs"`
	Points        int            `json:"grid_points"`
	Workloads     int            `json:"workloads"`
	NumCPU        int            `json:"num_cpu"`
	Engines       []engineResult `json:"engines"`
	Speedup       float64        `json:"wall_clock_speedup"`
	PassReduction float64        `json:"pass_reduction"`
	// StackSpeedup is MultiPass wall-clock over StackDist wall-clock on
	// the same grid: the one-pass stack-distance engine's measured win
	// over the already-single-pass family engine.
	StackSpeedup float64       `json:"stackdist_speedup_vs_multipass"`
	ShardCurve   []shardResult `json:"shard_curve"`
	// ShardSpeedup is the best point of the curve: wall-clock at
	// shards=1 over wall-clock at the largest measured shard count.
	ShardSpeedup float64 `json:"shard_speedup"`
	// ShardCurveTruncated is set when the curve asks for more shards
	// than the machine has CPUs: those points ran oversubscribed, so
	// the tail of the curve measures contention, not scaling.
	ShardCurveTruncated bool `json:"shard_curve_truncated"`
	// WordRefs is the total word references replayed per full-grid
	// sweep: the denominator of the two per-reference kernel figures.
	WordRefs uint64 `json:"word_refs_total"`
	// Repeat is how many times each engine's sweep was timed; Seconds,
	// NsPerRef and AllocsPerRef report medians over these runs.
	Repeat int `json:"repeat"`
	// CalNs is the core-frequency calibration (kernelbench.Calibrate)
	// taken alongside the timed runs.  Shared containers swing 2x in
	// effective clock between sessions; dividing two records' cal_ns
	// separates an engine change from the machine simply running at a
	// different speed (the same trick cmd/benchcheck gates on).
	CalNs float64 `json:"cal_ns"`
	// NsPerRef is a documented alias of the MultiPass entry's ns_per_ref
	// in the engines array, kept at the top level for existing
	// consumers: MultiPass wall-clock nanoseconds per word reference
	// (each reference drives every grid configuration that shares its
	// architecture's trace pass).
	NsPerRef float64 `json:"ns_per_ref"`
	// AllocsPerRef likewise aliases the MultiPass entry's
	// allocs_per_ref: heap objects allocated during the timed MultiPass
	// run per word reference.
	AllocsPerRef float64 `json:"allocs_per_ref"`
}

func main() {
	var (
		refs       = flag.Int("refs", 100000, "references per workload trace")
		nets       = flag.String("nets", "64,256,1024", "comma-separated net sizes")
		shards     = flag.String("shards", "", "comma-separated shard counts for the scaling curve (default 1,2,4,...,NumCPU)")
		verify     = flag.Bool("verify", false, "cross-check sharded results for bit-identity and exit non-zero on mismatch")
		checkpoint = flag.String("checkpoint", "", "journal `file` for the checkpoint/resume round-trip proof: run half of each suite checkpointed, resume the full suite from the journal, and exit non-zero unless the merged results are identical to an uninterrupted sweep")
		repeat     = flag.Int("repeat", 3, "timed runs per engine; the record reports the median with min/max bounds")
		out        = flag.String("out", "BENCH_sweep.json", "output file")
	)
	tf := telemetry.RegisterFlags(flag.CommandLine)
	tf.RegisterSweepFlags(flag.CommandLine)
	flag.Parse()

	netSizes, err := parseInts(*nets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsweep: bad -nets: %v\n", err)
		os.Exit(2)
	}
	if *repeat < 1 {
		fmt.Fprintln(os.Stderr, "benchsweep: -repeat must be at least 1")
		os.Exit(2)
	}
	// An explicit -shards list is honored exactly as given, no NumCPU
	// clamp; the default curve is padded to at least three points so a
	// small machine never silently produces a degenerate one-entry
	// curve.
	curve := defaultCurve(runtime.NumCPU())
	if *shards != "" {
		if curve, err = parseInts(*shards); err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: bad -shards: %v\n", err)
			os.Exit(2)
		}
	}
	curveTruncated := false
	for _, s := range curve {
		if s > runtime.NumCPU() {
			curveTruncated = true
			fmt.Fprintf(os.Stderr, "benchsweep: note: shards=%d exceeds the %d available CPUs; that point of the curve runs oversubscribed (shard_curve_truncated: true)\n",
				s, runtime.NumCPU())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sess, err := tf.Start("benchsweep", telemetry.Fingerprint(
		"bench=sweep_table7", fmt.Sprint("refs=", *refs),
		fmt.Sprint("nets=", netSizes), fmt.Sprint("curve=", curve)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(2)
	}
	sess.Manifest.Engine = sweep.MultiPass.String()
	sess.Manifest.Shards = runtime.NumCPU()
	// die finalises observability (profiles, manifest, event sink)
	// before a failure exit, so even a failed bench leaves evidence.
	// A signal-cancelled run is recorded as interrupted in RUN.json and
	// stamped on the stream's terminal run-end event.
	die := func(v ...any) {
		fmt.Fprintln(os.Stderr, v...)
		if ctx.Err() != nil {
			sess.Manifest.Interrupted = true
		}
		sess.Close()
		os.Exit(1)
	}

	rec := record{
		Bench:               "sweep_table7",
		Refs:                *refs,
		Nets:                netSizes,
		NumCPU:              runtime.NumCPU(),
		ShardCurveTruncated: curveTruncated,
	}
	for _, a := range synth.AllArchs() {
		rec.Archs = append(rec.Archs, a.String())
		rec.Points += len(sweep.Grid(netSizes, a.WordSize()))
		rec.Workloads += len(synth.Workloads(a))
	}

	if *verify {
		if err := verifyShardIdentity(ctx, netSizes, *refs); err != nil {
			die("benchsweep: verify:", err)
		}
		fmt.Printf("verify ok: shards=1, shards=%d and the materialised baseline agree on every counter\n", runtime.NumCPU())
	}

	if *checkpoint != "" {
		if err := verifyCheckpointResume(ctx, netSizes, *refs, *checkpoint); err != nil {
			die("benchsweep: checkpoint:", err)
		}
		fmt.Println("checkpoint ok: interrupted-then-resumed sweeps reproduce the uninterrupted results exactly, across engines")
	}

	// Each engine's full-grid sweep is timed -repeat times, rounds
	// interleaved across engines so slow machine-wide drift (thermal,
	// noisy neighbours) biases every engine alike rather than whichever
	// ran last.  Medians feed every derived figure; min/max are recorded
	// so the noise floor behind a speedup claim is visible.
	engines := []sweep.Engine{sweep.Reference, sweep.MultiPass, sweep.StackDist}
	secSamples := make([][]float64, len(engines))
	allocSamples := make([][]float64, len(engines))
	enginePasses := make([]int, len(engines))
	for r := 0; r < *repeat; r++ {
		for i, eng := range engines {
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			secs, passes, err := timeSweep(ctx, netSizes, *refs, sweep.Request{Engine: eng, Recorder: sess.Recorder()})
			if err != nil {
				die("benchsweep:", err)
			}
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			secSamples[i] = append(secSamples[i], secs)
			allocSamples[i] = append(allocSamples[i], float64(after.Mallocs-before.Mallocs))
			enginePasses[i] = passes
		}
	}
	var mpSecs, mpAllocs float64
	var rawSecs []float64
	for i, eng := range engines {
		med, lo, hi := median(secSamples[i])
		allocs, _, _ := median(allocSamples[i])
		if eng == sweep.MultiPass {
			mpSecs, mpAllocs = med, allocs
		}
		rawSecs = append(rawSecs, med)
		hitNs, missNs, err := kernelbench.Bench(eng)
		if err != nil {
			die("benchsweep:", err)
		}
		er := engineResult{
			Engine:       eng.String(),
			Seconds:      round3(med),
			SecondsMin:   round3(lo),
			SecondsMax:   round3(hi),
			TracePasses:  enginePasses[i],
			KernelHitNs:  round3(hitNs),
			KernelMissNs: round3(missNs),
		}
		rec.Engines = append(rec.Engines, er)
		fmt.Printf("%-10s %8.3fs median of %d (%.3f..%.3f)  %5d passes  kernel hit %.1fns miss %.1fns\n",
			er.Engine, er.Seconds, *repeat, er.SecondsMin, er.SecondsMax, er.TracePasses, er.KernelHitNs, er.KernelMissNs)
	}
	ref, mp, sd := rec.Engines[0], rec.Engines[1], rec.Engines[2]
	if mp.Seconds > 0 {
		rec.Speedup = round3(ref.Seconds / mp.Seconds)
	}
	if mp.TracePasses > 0 {
		rec.PassReduction = round3(float64(ref.TracePasses) / float64(mp.TracePasses))
	}
	if sd.Seconds > 0 {
		rec.StackSpeedup = round3(mp.Seconds / sd.Seconds)
	}
	fmt.Printf("engine speedup %.2fx wall clock, %.0fx fewer trace passes; stackdist %.2fx vs multipass\n",
		rec.Speedup, rec.PassReduction, rec.StackSpeedup)

	wordRefs, err := countWordRefs(*refs)
	if err != nil {
		die("benchsweep: counting word refs:", err)
	}
	rec.WordRefs = wordRefs
	rec.Repeat = *repeat
	rec.CalNs = round3(kernelbench.Calibrate())
	for i := range rec.Engines {
		if wordRefs > 0 {
			rec.Engines[i].NsPerRef = round3(rawSecs[i] * 1e9 / float64(wordRefs))
			allocs, _, _ := median(allocSamples[i])
			rec.Engines[i].AllocsPerRef = round3(allocs / float64(wordRefs))
		}
		if rec.Workloads > 0 {
			rec.Engines[i].PassesPerWorkload = round3(float64(rec.Engines[i].TracePasses) / float64(rec.Workloads))
		}
	}
	if wordRefs > 0 {
		rec.NsPerRef = round3(mpSecs * 1e9 / float64(wordRefs))
		rec.AllocsPerRef = round3(mpAllocs / float64(wordRefs))
	}
	fmt.Printf("multipass kernel: %.1f ns/ref, %.3f allocs/ref over %d word refs; stackdist %.1f ns/ref\n",
		rec.NsPerRef, rec.AllocsPerRef, rec.WordRefs, rec.Engines[2].NsPerRef)

	var base float64
	for _, s := range curve {
		secs, _, err := timeSweep(ctx, netSizes, *refs, sweep.Request{
			Engine: sweep.MultiPass, Shards: s, Parallelism: s,
			Recorder: sess.Recorder(),
		})
		if err != nil {
			die("benchsweep:", err)
		}
		sr := shardResult{Shards: s, Seconds: round3(secs)}
		if s == 1 {
			base = secs
		}
		if base > 0 && secs > 0 {
			sr.SpeedupVs1 = round3(base / secs)
		}
		rec.ShardCurve = append(rec.ShardCurve, sr)
		fmt.Printf("shards=%-3d %8.3fs  %.2fx vs shards=1\n", sr.Shards, sr.Seconds, sr.SpeedupVs1)
	}
	if n := len(rec.ShardCurve); n > 0 {
		rec.ShardSpeedup = rec.ShardCurve[n-1].SpeedupVs1
	}

	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		die("benchsweep:", err)
	}
	// Atomic, like WriteTraceFile: an interrupted bench never leaves a
	// torn BENCH_sweep.json behind for CI to diff against.
	if err := telemetry.WriteFileAtomic(*out, append(b, '\n'), 0o644); err != nil {
		die("benchsweep:", err)
	}

	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep: telemetry:", err)
		os.Exit(2)
	}
}

// countWordRefs streams every workload's word-split trace (untimed) and
// counts the references one MultiPass full-grid sweep replays: the
// denominator for ns_per_ref and allocs_per_ref.
func countWordRefs(refs int) (uint64, error) {
	var total uint64
	buf := make([]trace.Ref, trace.ChunkRefs)
	for _, a := range synth.AllArchs() {
		for _, prof := range synth.Workloads(a) {
			src, err := synth.NewWordSource(prof, refs, a.WordSize())
			if err != nil {
				return 0, fmt.Errorf("%s/%s: %w", a, prof.Name, err)
			}
			for {
				n, err := trace.ReadChunk(src, buf)
				total += uint64(n)
				if err == io.EOF {
					break
				}
				if err != nil {
					return 0, fmt.Errorf("%s/%s: %w", a, prof.Name, err)
				}
			}
		}
	}
	return total, nil
}

// timeSweep runs the full Table 7 grid across every architecture with
// the given engine settings, returning wall-clock seconds and summed
// trace passes.
func timeSweep(ctx context.Context, netSizes []int, refs int, base sweep.Request) (float64, int, error) {
	start := time.Now()
	passes := 0
	for _, a := range synth.AllArchs() {
		req := base
		req.Arch = a
		req.Points = sweep.Grid(netSizes, a.WordSize())
		req.Refs = refs
		res, err := sweep.RunContext(ctx, req)
		if err != nil {
			return 0, 0, fmt.Errorf("%s/%s: %w", req.Engine, a, err)
		}
		passes += res.TracePasses
	}
	return time.Since(start).Seconds(), passes, nil
}

// verifyShardIdentity proves the single-pass engines exact on the full
// grid: for every architecture, the materialised MultiPass baseline
// (Shards: -1) must be matched bit-for-bit by MultiPass and StackDist
// at shards=-1, 1 and NumCPU -- every run and summary identical, and
// the StackDist sweeps making exactly one trace pass per workload.
func verifyShardIdentity(ctx context.Context, netSizes []int, refs int) error {
	for _, a := range synth.AllArchs() {
		base := sweep.Request{
			Arch: a, Points: sweep.Grid(netSizes, a.WordSize()),
			Refs: refs, Engine: sweep.MultiPass,
		}
		want := base
		want.Shards = -1
		wantRes, err := sweep.RunContext(ctx, want)
		if err != nil {
			return fmt.Errorf("%s baseline: %w", a, err)
		}
		for _, eng := range []sweep.Engine{sweep.MultiPass, sweep.StackDist} {
			for _, s := range []int{-1, 1, runtime.NumCPU()} {
				if eng == sweep.MultiPass && s == -1 {
					continue // the baseline itself
				}
				req := base
				req.Engine = eng
				req.Shards = s
				res, err := sweep.RunContext(ctx, req)
				if err != nil {
					return fmt.Errorf("%s %s shards=%d: %w", a, eng, s, err)
				}
				if !reflect.DeepEqual(res.Runs, wantRes.Runs) ||
					!reflect.DeepEqual(res.Summaries, wantRes.Summaries) {
					return fmt.Errorf("%s: %s shards=%d results differ from the materialised multipass baseline", a, eng, s)
				}
				if eng == sweep.StackDist {
					if workloads := len(synth.Workloads(a)); res.TracePasses != workloads {
						return fmt.Errorf("%s: stackdist shards=%d made %d trace passes, want %d (one per workload)",
							a, s, res.TracePasses, workloads)
					}
				}
			}
		}
	}
	return nil
}

// verifyCheckpointResume proves checkpoint/resume exact on the full
// grid: for every architecture, a checkpointed sweep of half the suite
// followed by a full-suite resume (under a different engine and shard
// strategy -- the journal is keyed only by what determines results)
// must reproduce an uninterrupted sweep's runs and summaries exactly.
func verifyCheckpointResume(ctx context.Context, netSizes []int, refs int, path string) error {
	for _, a := range synth.AllArchs() {
		base := sweep.Request{
			Arch: a, Points: sweep.Grid(netSizes, a.WordSize()),
			Refs: refs, Engine: sweep.MultiPass,
		}
		want, err := sweep.RunContext(ctx, base)
		if err != nil {
			return fmt.Errorf("%s baseline: %w", a, err)
		}

		suite := synth.Workloads(a)
		half := len(suite) / 2
		if half == 0 {
			half = len(suite)
		}
		partial := base
		partial.Checkpoint = path
		for _, p := range suite[:half] {
			partial.Workloads = append(partial.Workloads, p.Name)
		}
		if _, err := sweep.RunContext(ctx, partial); err != nil {
			return fmt.Errorf("%s interrupted phase: %w", a, err)
		}

		resumed := base
		resumed.Checkpoint = path
		resumed.Engine = sweep.Reference
		resumed.Shards = runtime.NumCPU()
		res, err := sweep.RunContext(ctx, resumed)
		if err != nil {
			return fmt.Errorf("%s resume: %w", a, err)
		}
		if res.Resumed != half {
			return fmt.Errorf("%s: resumed %d workloads from the journal, want %d", a, res.Resumed, half)
		}
		if !reflect.DeepEqual(res.Runs, want.Runs) ||
			!reflect.DeepEqual(res.Summaries, want.Summaries) {
			return fmt.Errorf("%s: resumed results differ from the uninterrupted sweep", a)
		}
	}
	return nil
}

// defaultCurve is 1, 2, 4, ... up to and including NumCPU, padded with
// the next powers of two until it has at least three points: a one- or
// two-CPU machine measures 1,2,4 (oversubscribed, and flagged so via
// shard_curve_truncated) rather than silently producing a degenerate
// single-entry curve.
func defaultCurve(ncpu int) []int {
	var out []int
	for s := 1; s < ncpu; s *= 2 {
		out = append(out, s)
	}
	out = append(out, ncpu)
	for len(out) < 3 {
		out = append(out, out[len(out)-1]*2)
	}
	return out
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}

// median returns the median, minimum and maximum of the samples.  An
// even sample count averages the two middle values.
func median(samples []float64) (med, lo, hi float64) {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0, 0, 0
	}
	med = s[n/2]
	if n%2 == 0 {
		med = (s[n/2-1] + s[n/2]) / 2
	}
	return med, s[0], s[n-1]
}
