// Command benchsweep times the two sweep engines on the Table 7 grid --
// every architecture, the paper's net sizes, the full block/sub-block
// matrix -- and records wall-clock seconds, trace-replay passes, the
// speedup and the pass reduction in a JSON file, so the single-pass
// kernel's advantage is tracked in the repository's perf trajectory.
//
// Usage:
//
//	benchsweep [-refs N] [-nets LIST] [-out FILE]
//
// The committed BENCH_sweep.json is regenerated with the defaults:
//
//	go run ./cmd/benchsweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"subcache/internal/sweep"
	"subcache/internal/synth"
)

type engineResult struct {
	Engine      string  `json:"engine"`
	Seconds     float64 `json:"seconds"`
	TracePasses int     `json:"trace_passes"`
}

type record struct {
	Bench         string         `json:"bench"`
	Refs          int            `json:"refs_per_workload"`
	Nets          []int          `json:"nets"`
	Archs         []string       `json:"archs"`
	Points        int            `json:"grid_points"`
	Workloads     int            `json:"workloads"`
	Engines       []engineResult `json:"engines"`
	Speedup       float64        `json:"wall_clock_speedup"`
	PassReduction float64        `json:"pass_reduction"`
}

func main() {
	var (
		refs = flag.Int("refs", 100000, "references per workload trace")
		nets = flag.String("nets", "64,256,1024", "comma-separated net sizes")
		out  = flag.String("out", "BENCH_sweep.json", "output file")
	)
	flag.Parse()

	var netSizes []int
	for _, f := range strings.Split(*nets, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: bad net size %q\n", f)
			os.Exit(2)
		}
		netSizes = append(netSizes, n)
	}

	rec := record{
		Bench: "sweep_table7",
		Refs:  *refs,
		Nets:  netSizes,
	}
	for _, a := range synth.AllArchs() {
		rec.Archs = append(rec.Archs, a.String())
		rec.Points += len(sweep.Grid(netSizes, a.WordSize()))
		rec.Workloads += len(synth.Workloads(a))
	}

	for _, eng := range []sweep.Engine{sweep.Reference, sweep.MultiPass} {
		start := time.Now()
		passes := 0
		for _, a := range synth.AllArchs() {
			res, err := sweep.Run(sweep.Request{
				Arch:   a,
				Points: sweep.Grid(netSizes, a.WordSize()),
				Refs:   *refs,
				Engine: eng,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsweep: %s/%s: %v\n", eng, a, err)
				os.Exit(1)
			}
			passes += res.TracePasses
		}
		er := engineResult{
			Engine:      eng.String(),
			Seconds:     time.Since(start).Seconds(),
			TracePasses: passes,
		}
		rec.Engines = append(rec.Engines, er)
		fmt.Printf("%-10s %8.3fs  %5d passes\n", er.Engine, er.Seconds, er.TracePasses)
	}

	ref, mp := rec.Engines[0], rec.Engines[1]
	if mp.Seconds > 0 {
		rec.Speedup = round3(ref.Seconds / mp.Seconds)
	}
	if mp.TracePasses > 0 {
		rec.PassReduction = round3(float64(ref.TracePasses) / float64(mp.TracePasses))
	}
	rec.Engines[0].Seconds = round3(ref.Seconds)
	rec.Engines[1].Seconds = round3(mp.Seconds)
	fmt.Printf("speedup %.2fx wall clock, %.0fx fewer trace passes\n", rec.Speedup, rec.PassReduction)

	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
}

func round3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}
