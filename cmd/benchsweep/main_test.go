package main

import (
	"reflect"
	"testing"
)

// TestDefaultCurveNeverDegenerate: the default shard curve must have at
// least three points on any machine -- a 1- or 2-CPU runner gets 1,2,4
// (flagged oversubscribed), never a silent single-entry curve.
func TestDefaultCurveNeverDegenerate(t *testing.T) {
	cases := []struct {
		ncpu int
		want []int
	}{
		{1, []int{1, 2, 4}},
		{2, []int{1, 2, 4}},
		{3, []int{1, 2, 3}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
		{16, []int{1, 2, 4, 8, 16}},
	}
	for _, c := range cases {
		got := defaultCurve(c.ncpu)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("defaultCurve(%d) = %v, want %v", c.ncpu, got, c.want)
		}
		if len(got) < 3 {
			t.Errorf("defaultCurve(%d) has %d points, want >= 3", c.ncpu, len(got))
		}
	}
}
