// Command sweepd is the long-running sweep service: an HTTP/JSON
// daemon that accepts sweep requests (POST /v1/sweeps), schedules them
// on a bounded worker pool with admission control and per-tenant
// quotas, and serves results from a cache keyed by the checkpoint
// request fingerprint -- identical requests never simulate twice, and
// concurrent identical requests simulate exactly once (singleflight).
//
// Usage:
//
//	sweepd [-addr HOST:PORT] [-dir DIR] [-workers N] [-queue N]
//	       [-tenant-quota N] [-max-refs N] [-grace DUR] [-stats FILE]
//	       [-cache-ttl DUR] [-cache-max-bytes N] [-retries N]
//	       [-retry-backoff DUR]
//	       [-pprof ADDR] [-cpuprofile FILE] [-memprofile FILE]
//
// Each job streams the structured telemetry event stream to
// <dir>/jobs/<id>/events.jsonl (tail it with GET /v1/sweeps/{id}/events)
// and journals completed workloads to a per-fingerprint checkpoint.
// On SIGINT/SIGTERM the daemon drains gracefully: it stops admitting
// (503), cancels still-queued jobs, gives in-flight sweeps -grace to
// finish, then cancels them at a chunk boundary -- the checkpoint
// journal keeps every completed workload, so resubmitting after a
// restart resumes bit-identically.  -stats writes the final service
// counter snapshot as JSON at exit.
//
// The daemon is crash-safe beyond the graceful path: every job state
// transition is journaled to <dir>/jobs.jsonl, so after a SIGKILL or
// power loss the next start re-admits every job that never reached a
// terminal state and resumes it from its checkpoint (GET /readyz
// answers 503 "recovering" until the backlog is terminal).  The result
// cache is verified on read (corrupt entries are quarantined under
// <dir>/cache/corrupt/ and re-simulated) and bounded by -cache-ttl and
// -cache-max-bytes; transient trace-source failures are retried up to
// -retries times with exponential backoff starting at -retry-backoff.
// docs/SERVICE.md ("Durability and recovery") has the full story.
//
// The API, cache semantics and drain behavior are documented in
// docs/SERVICE.md; cmd/sweeploadgen is the matching load harness.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"subcache/internal/service"
	"subcache/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address (host:port; port 0 picks one)")
		dir     = flag.String("dir", "sweepd-data", "data directory (result cache, checkpoints, event streams)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "admission queue depth; submits beyond it get 429")
		quota   = flag.Int("tenant-quota", 8, "max live (queued+running) jobs per tenant; beyond it 429")
		maxRefs = flag.Int("max-refs", 2_000_000, "largest per-workload trace length a request may ask for")
		grace   = flag.Duration("grace", 30*time.Second, "drain grace period for in-flight sweeps on SIGTERM")
		stats   = flag.String("stats", "", "write the final service counter snapshot (JSON) to `file` at exit")

		cacheTTL = flag.Duration("cache-ttl", 0, "result-cache entry lifetime (0 = service default of 168h, negative = never expire)")
		cacheMax = flag.Int64("cache-max-bytes", 0, "result-cache size cap in bytes, LRU past it (0 = service default of 256 MiB, negative = unbounded)")
		retries  = flag.Int("retries", 0, "max retries of a transiently failed sweep (0 = service default of 2, negative = never retry)")
		backoff  = flag.Duration("retry-backoff", 0, "base exponential retry backoff (0 = service default of 250ms)")
	)
	tf := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	sess, err := tf.Start("sweepd", telemetry.Fingerprint("tool=sweepd"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(2)
	}

	srv, err := service.New(service.Options{
		Dir:           *dir,
		Workers:       *workers,
		QueueDepth:    *queue,
		TenantQuota:   *quota,
		MaxRefs:       *maxRefs,
		CacheTTL:      *cacheTTL,
		CacheMaxBytes: *cacheMax,
		MaxRetries:    *retries,
		RetryBackoff:  *backoff,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		sess.Close()
		os.Exit(1)
	}
	if n := srv.Recovering(); n > 0 {
		fmt.Printf("sweepd: recovered %d interrupted job(s) from the journal; /readyz reports 503 until they finish\n", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		sess.Close()
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv}
	fmt.Printf("sweepd %s: listening on http://%s (data dir %s)\n", telemetry.Version, ln.Addr(), *dir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	exit := 0
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		exit = 1
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Fprintf(os.Stderr, "sweepd: draining (grace %v)...\n", *grace)
		dctx, cancel := context.WithTimeout(context.Background(), *grace)
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "sweepd: drain grace expired; in-flight sweeps checkpointed and cancelled\n")
		}
		cancel()
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(hctx)
		hcancel()
	}

	snap := srv.Stats()
	if b, err := json.MarshalIndent(snap, "", "  "); err == nil {
		fmt.Fprintf(os.Stderr, "sweepd: final stats: %s\n", b)
		if *stats != "" {
			if err := telemetry.WriteFileAtomic(*stats, append(b, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sweepd:", err)
				exit = 1
			}
		}
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd: telemetry:", err)
		exit = 1
	}
	os.Exit(exit)
}
