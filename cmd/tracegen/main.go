// Command tracegen writes the synthetic workload traces to disk, in the
// Dinero-style text format or the compact .strc binary format.
//
// Usage:
//
//	tracegen -workload ED -n 1000000 -out traces/        # one workload
//	tracegen -arch PDP-11 -n 1000000 -out traces/        # one suite
//	tracegen -all -n 1000000 -out traces/ -format binary # everything
//	tracegen -list                                       # show catalog
//
// The shared profiling flags -pprof, -cpuprofile and -memprofile
// (internal/telemetry) are available for performance work.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"subcache"
	"subcache/internal/telemetry"
)

func main() {
	var (
		workload = flag.String("workload", "", "single workload name (see -list)")
		arch     = flag.String("arch", "", "architecture suite: PDP-11, Z8000, VAX-11, System/370")
		all      = flag.Bool("all", false, "generate every workload")
		n        = flag.Int("n", 1000000, "references per trace")
		out      = flag.String("out", "traces", "output directory")
		format   = flag.String("format", "text", "trace format: text or binary")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	obs := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	s, err := obs.Start("tracegen", telemetry.Fingerprint("tool=tracegen"))
	if err != nil {
		fatal(err)
	}
	sess = s
	defer sess.Close()

	if *list {
		for _, a := range subcache.Architectures() {
			fmt.Printf("%s (word size %d):\n", a, a.WordSize())
			for _, w := range subcache.Workloads(a) {
				fmt.Printf("  %-8s\n", w.Name)
			}
		}
		return
	}

	var names []string
	switch {
	case *all:
		names = subcache.WorkloadNames()
	case *arch != "":
		a, err := archByName(*arch)
		if err != nil {
			fatal(err)
		}
		for _, w := range subcache.Workloads(a) {
			names = append(names, w.Name)
		}
	case *workload != "":
		names = []string{*workload}
	default:
		fatal(fmt.Errorf("specify -workload, -arch or -all (or -list)"))
	}

	var tf subcache.TraceFormat
	var ext string
	switch strings.ToLower(*format) {
	case "text":
		tf, ext = subcache.FormatText, ".din"
	case "binary", "bin":
		tf, ext = subcache.FormatBinary, ".strc"
	default:
		fatal(fmt.Errorf("unknown format %q (want text or binary)", *format))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		refs, err := subcache.GenerateWorkload(name, *n)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, strings.ToLower(name)+ext)
		written, err := subcache.WriteTraceFile(path, subcache.NewSliceSource(refs), tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s -> %s (%d refs)\n", name, path, written)
	}
}

func archByName(name string) (subcache.Arch, error) {
	for _, a := range subcache.Architectures() {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown architecture %q (want PDP-11, Z8000, VAX-11 or System/370)", name)
}

// sess is the live observability session, closed by fatal so profiles
// survive failure exits.
var sess *telemetry.Session

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	if sess != nil {
		sess.Close()
	}
	os.Exit(1)
}
