package main

import (
	"testing"

	"subcache"
)

func TestArchByName(t *testing.T) {
	cases := []struct {
		in   string
		want subcache.Arch
		ok   bool
	}{
		{"PDP-11", subcache.PDP11, true},
		{"pdp-11", subcache.PDP11, true},
		{"Z8000", subcache.Z8000, true},
		{"VAX-11", subcache.VAX11, true},
		{"System/370", subcache.S370, true},
		{"system/370", subcache.S370, true},
		{"68000", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := archByName(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("archByName(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("archByName(%q) accepted", c.in)
		}
	}
}
