// Command eventcheck validates telemetry artifacts: structured JSONL
// event streams (as written by -events and sweepd's per-job streams), a
// RUN.json run manifest (as written by -manifest), a sweepd job journal
// (as written to <dir>/jobs.jsonl; -job-journal), and a Prometheus text
// exposition (as served by sweepd's GET /metrics; -metrics).  It is the
// consumer-side contract check for docs/OBSERVABILITY.md and
// docs/SERVICE.md -- CI runs it against a live sweep's output so schema
// drift is caught the moment it is introduced.
//
// Usage:
//
//	eventcheck [-manifest RUN.json] [-job-journal jobs.jsonl]
//	           [-metrics metrics.txt] [-require TYPES] [-spans]
//	           [events.jsonl ...]
//
// Every line of a stream must be a schema-valid event with strictly
// increasing sequence numbers; span-start/span-end events must nest
// (balanced, parents open before children, all closed by run-end).
// -require takes a comma-separated list of event types (e.g.
// "run-start,point-done,span-start") that must each appear at least
// once in every stream.  -spans additionally prints each stream's span
// tree: per-span duration, share of parent, critical-path marker and a
// per-stage rollup.  -job-journal validates strictly: every record must
// carry the shared journal version, a known transition kind, and an
// intact checksum -- unknown kinds and torn tails that the daemon's
// tolerant loader would skip are hard errors here.  -metrics validates
// the exposition grammar (HELP/TYPE lines, family contiguity, label
// syntax, no duplicate series) and histogram coherence (cumulative
// buckets, +Inf == _count, _sum present).  Exit status is non-zero on
// any violation, with the offending line number on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"subcache/internal/service"
	"subcache/internal/telemetry"
)

func main() {
	var (
		manifest = flag.String("manifest", "", "also validate a RUN.json `file`")
		journal  = flag.String("job-journal", "", "also validate a sweepd job-journal `file` (jobs.jsonl)")
		metrics  = flag.String("metrics", "", "also validate a Prometheus text exposition `file` (as served by sweepd /metrics)")
		require  = flag.String("require", "", "comma-separated event types that must appear at least once")
		spans    = flag.Bool("spans", false, "print each stream's span tree (durations, critical path, stage rollup)")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		telemetry.PrintVersion("eventcheck")
		return
	}
	if flag.NArg() == 0 && *manifest == "" && *journal == "" && *metrics == "" {
		fmt.Fprintln(os.Stderr, "usage: eventcheck [-manifest RUN.json] [-job-journal jobs.jsonl] [-metrics metrics.txt] [-require TYPES] [-spans] [events.jsonl ...]")
		os.Exit(2)
	}

	for _, path := range flag.Args() {
		checkStream(path, splitList(*require), *spans)
	}

	if *manifest != "" {
		m, err := telemetry.ReadManifest(*manifest)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: manifest ok  tool=%s fingerprint=%s build=%s wall=%.2fs cpu=%.2fs\n",
			*manifest, m.Tool, m.Fingerprint, m.BuildVersion, m.WallSeconds, m.CPUSeconds)
	}

	if *journal != "" {
		f, err := os.Open(*journal)
		if err != nil {
			fatal(err)
		}
		st, err := service.ValidateJournal(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *journal, err))
		}
		fmt.Printf("%s: %d journal records ok", *journal, st.Records)
		kinds := make([]string, 0, len(st.ByKind))
		for k := range st.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("  %s=%d", k, st.ByKind[k])
		}
		fmt.Println()
	}

	if *metrics != "" {
		f, err := os.Open(*metrics)
		if err != nil {
			fatal(err)
		}
		st, err := telemetry.ValidatePromText(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *metrics, err))
		}
		fmt.Printf("%s: exposition ok  families=%d series=%d samples=%d\n",
			*metrics, st.Families, st.Series, st.Samples)
	}
}

// checkStream validates one event stream and optionally prints its
// span report.
func checkStream(path string, require []string, spans bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	st, err := telemetry.ValidateStream(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	for _, typ := range require {
		if st.ByType[typ] == 0 {
			fatal(fmt.Errorf("%s: no %q events (have %v)", path, typ, st.ByType))
		}
	}
	fmt.Printf("%s: %d events ok", path, st.Events)
	for _, typ := range []string{telemetry.EventRunStart, telemetry.EventPointDone,
		telemetry.EventShardStat, telemetry.EventErrorAttributed, telemetry.EventHeartbeat,
		telemetry.EventSpanStart, telemetry.EventSpanEnd, telemetry.EventRunEnd} {
		if n := st.ByType[typ]; n > 0 {
			fmt.Printf("  %s=%d", typ, n)
		}
	}
	fmt.Println()
	if spans {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = telemetry.WriteSpanReport(os.Stdout, f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eventcheck:", err)
	os.Exit(1)
}
