// Command eventcheck validates telemetry artifacts: a structured JSONL
// event stream (as written by -events), a RUN.json run manifest (as
// written by -manifest), and a sweepd job journal (as written to
// <dir>/jobs.jsonl; -job-journal).  It is the consumer-side contract
// check for docs/OBSERVABILITY.md and docs/SERVICE.md -- CI runs it
// against a live sweep's output so schema drift is caught the moment
// it is introduced.
//
// Usage:
//
//	eventcheck [-manifest RUN.json] [-job-journal jobs.jsonl]
//	           [-require TYPES] [events.jsonl]
//
// Every line of the stream must be a schema-valid event with strictly
// increasing sequence numbers.  -require takes a comma-separated list
// of event types (e.g. "run-start,point-done,shard-stat") that must
// each appear at least once.  -job-journal validates strictly: every
// record must carry the shared journal version, a known transition
// kind, and an intact checksum -- unknown kinds and torn tails that
// the daemon's tolerant loader would skip are hard errors here.  Exit
// status is non-zero on any violation, with the offending line number
// on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"subcache/internal/service"
	"subcache/internal/telemetry"
)

func main() {
	var (
		manifest = flag.String("manifest", "", "also validate a RUN.json `file`")
		journal  = flag.String("job-journal", "", "also validate a sweepd job-journal `file` (jobs.jsonl)")
		require  = flag.String("require", "", "comma-separated event types that must appear at least once")
	)
	flag.Parse()
	if flag.NArg() != 1 && *manifest == "" && *journal == "" {
		fmt.Fprintln(os.Stderr, "usage: eventcheck [-manifest RUN.json] [-job-journal jobs.jsonl] [-require TYPES] [events.jsonl]")
		os.Exit(2)
	}

	if flag.NArg() == 1 {
		path := flag.Arg(0)
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		st, err := telemetry.ValidateStream(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, typ := range splitList(*require) {
			if st.ByType[typ] == 0 {
				fatal(fmt.Errorf("%s: no %q events (have %v)", path, typ, st.ByType))
			}
		}
		fmt.Printf("%s: %d events ok", path, st.Events)
		for _, typ := range []string{telemetry.EventRunStart, telemetry.EventPointDone,
			telemetry.EventShardStat, telemetry.EventErrorAttributed, telemetry.EventHeartbeat,
			telemetry.EventRunEnd} {
			if n := st.ByType[typ]; n > 0 {
				fmt.Printf("  %s=%d", typ, n)
			}
		}
		fmt.Println()
	}

	if *manifest != "" {
		m, err := telemetry.ReadManifest(*manifest)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: manifest ok  tool=%s fingerprint=%s wall=%.2fs cpu=%.2fs\n",
			*manifest, m.Tool, m.Fingerprint, m.WallSeconds, m.CPUSeconds)
	}

	if *journal != "" {
		f, err := os.Open(*journal)
		if err != nil {
			fatal(err)
		}
		st, err := service.ValidateJournal(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *journal, err))
		}
		fmt.Printf("%s: %d journal records ok", *journal, st.Records)
		kinds := make([]string, 0, len(st.ByKind))
		for k := range st.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Printf("  %s=%d", k, st.ByKind[k])
		}
		fmt.Println()
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eventcheck:", err)
	os.Exit(1)
}
