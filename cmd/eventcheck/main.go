// Command eventcheck validates telemetry artifacts: a structured JSONL
// event stream (as written by -events) and, optionally, a RUN.json run
// manifest (as written by -manifest).  It is the consumer-side contract
// check for docs/OBSERVABILITY.md -- CI runs it against a live sweep's
// output so schema drift is caught the moment it is introduced.
//
// Usage:
//
//	eventcheck [-manifest RUN.json] [-require TYPES] events.jsonl
//
// Every line of the stream must be a schema-valid event with strictly
// increasing sequence numbers.  -require takes a comma-separated list
// of event types (e.g. "run-start,point-done,shard-stat") that must
// each appear at least once.  Exit status is non-zero on any violation,
// with the offending line number on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"subcache/internal/telemetry"
)

func main() {
	var (
		manifest = flag.String("manifest", "", "also validate a RUN.json `file`")
		require  = flag.String("require", "", "comma-separated event types that must appear at least once")
	)
	flag.Parse()
	if flag.NArg() != 1 && *manifest == "" {
		fmt.Fprintln(os.Stderr, "usage: eventcheck [-manifest RUN.json] [-require TYPES] events.jsonl")
		os.Exit(2)
	}

	if flag.NArg() == 1 {
		path := flag.Arg(0)
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		st, err := telemetry.ValidateStream(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, typ := range splitList(*require) {
			if st.ByType[typ] == 0 {
				fatal(fmt.Errorf("%s: no %q events (have %v)", path, typ, st.ByType))
			}
		}
		fmt.Printf("%s: %d events ok", path, st.Events)
		for _, typ := range []string{telemetry.EventRunStart, telemetry.EventPointDone,
			telemetry.EventShardStat, telemetry.EventErrorAttributed, telemetry.EventHeartbeat,
			telemetry.EventRunEnd} {
			if n := st.ByType[typ]; n > 0 {
				fmt.Printf("  %s=%d", typ, n)
			}
		}
		fmt.Println()
	}

	if *manifest != "" {
		m, err := telemetry.ReadManifest(*manifest)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: manifest ok  tool=%s fingerprint=%s wall=%.2fs cpu=%.2fs\n",
			*manifest, m.Tool, m.Fingerprint, m.WallSeconds, m.CPUSeconds)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eventcheck:", err)
	os.Exit(1)
}
