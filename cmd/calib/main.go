// Command calib prints architecture-average miss/traffic ratios for a
// few reference configurations, used to calibrate the synthetic
// workload profiles against Table 7.
//
// The shared profiling flags -pprof, -cpuprofile and -memprofile
// (internal/telemetry) are available for performance work.
package main

import (
	"flag"
	"fmt"
	"os"

	"subcache/internal/cache"
	"subcache/internal/metrics"
	"subcache/internal/synth"
	"subcache/internal/telemetry"
	"subcache/internal/trace"
)

const refs = 1000000

func main() {
	tf := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()
	sess, err := tf.Start("calib", telemetry.Fingerprint("tool=calib", fmt.Sprint("refs=", refs)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "calib:", err)
		os.Exit(1)
	}
	defer sess.Close()
	type target struct {
		net, block, sub int
		paper           map[synth.Arch][2]float64 // miss, traffic
	}
	targets := []target{
		{1024, 16, 8, map[synth.Arch][2]float64{
			synth.PDP11: {0.052, 0.206}, synth.Z8000: {0.023, 0.092},
			synth.VAX11: {0.1058, 0.2116}, synth.S370: {0.2632, 0.5264}}},
		{256, 8, 8, map[synth.Arch][2]float64{
			synth.PDP11: {0.168, 0.672}, synth.Z8000: {0.108, 0.432},
			synth.VAX11: {0.2367, 0.4734}, synth.S370: {0.3645, 0.7290}}},
		{64, 8, 8, map[synth.Arch][2]float64{
			synth.PDP11: {0.339, 1.356}, synth.Z8000: {0.298, 1.192},
			synth.VAX11: {0.3892, 0.7784}, synth.S370: {0.5475, 1.0950}}},
		{64, 4, 2, map[synth.Arch][2]float64{
			synth.PDP11: {0.666, 0.666}, synth.Z8000: {0.671, 0.671}}},
		{1024, 32, 32, map[synth.Arch][2]float64{
			synth.PDP11: {0.033, 0.533}, synth.Z8000: {0.013, 0.208},
			synth.VAX11: {0.0588, 0.4704}, synth.S370: {0.1266, 1.0128}}},
	}
	for _, tg := range targets {
		for _, a := range synth.AllArchs() {
			paper, ok := tg.paper[a]
			if !ok {
				continue
			}
			if tg.sub < a.WordSize() {
				continue
			}
			var runs []metrics.Run
			for _, p := range synth.Workloads(a) {
				cfg := cache.Config{NetSize: tg.net, BlockSize: tg.block,
					SubBlockSize: tg.sub, Assoc: 4, WordSize: a.WordSize(),
					WarmStart: a.WarmStart()}
				c, err := cache.New(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				g, err := synth.NewGenerator(p, refs)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := c.Run(trace.NewSplitter(g, a.WordSize())); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				runs = append(runs, metrics.NewRun(p.Name, cfg, c.Stats()))
			}
			s := metrics.Average(runs)
			fmt.Printf("%4dB %2d,%2d %-10s miss=%.4f (paper %.4f)  traffic=%.4f (paper %.4f)\n",
				tg.net, tg.block, tg.sub, a, s.Miss, paper[0], s.Traffic, paper[1])
		}
		fmt.Println()
	}
}
