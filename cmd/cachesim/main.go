// Command cachesim runs one cache configuration over a trace and prints
// the paper's metrics, in the spirit of the classic Dinero simulators.
//
// The trace may come from a file (text din or binary .strc; see
// tracegen) or be synthesised on the fly from the built-in workload
// catalog:
//
//	cachesim -trace traces/ed.din -size 1024 -block 16 -sub 8 -word 2
//	cachesim -workload ED -n 1000000 -size 1024 -block 16 -sub 8 -word 2
//	cachesim -workload CCP -size 256 -block 16 -sub 2 -fetch lf -word 2
//
// The shared profiling flags -pprof, -cpuprofile and -memprofile
// (internal/telemetry) are available for performance work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"subcache"
	"subcache/internal/telemetry"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (din text or .strc binary)")
		workload  = flag.String("workload", "", "synthetic workload name (alternative to -trace)")
		n         = flag.Int("n", 1000000, "max references (with -workload: exact count)")

		size     = flag.Int("size", 1024, "net cache size in bytes")
		block    = flag.Int("block", 16, "block size in bytes (bytes per tag)")
		sub      = flag.Int("sub", 0, "sub-block size in bytes (default: block size)")
		assoc    = flag.Int("assoc", 4, "set associativity")
		word     = flag.Int("word", 2, "data-path word size in bytes")
		repl     = flag.String("repl", "lru", "replacement: lru, fifo, random")
		fetch    = flag.String("fetch", "demand", "fetch: demand, lf, lfopt, block")
		warm     = flag.Bool("warm", false, "warm-start accounting (skip cache-fill misses)")
		seed     = flag.Uint64("seed", 0, "seed for random replacement")
		copyback = flag.Bool("copyback", false, "copy-back (write-back) memory update instead of write-through")
		prefetch = flag.Bool("prefetch", false, "tagged one-block-lookahead prefetch")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		subs     = flag.String("subs", "", "comma-separated sub-block sizes to sweep (prints a tradeoff table)")
	)
	tf := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	s, err := tf.Start("cachesim", telemetry.Fingerprint("tool=cachesim"))
	if err != nil {
		fatal(err)
	}
	sess = s
	defer sess.Close()

	if *sub == 0 {
		*sub = *block
	}
	cfg := subcache.Config{
		NetSize: *size, BlockSize: *block, SubBlockSize: *sub,
		Assoc: *assoc, WordSize: *word,
		WarmStart: *warm, RandomSeed: *seed,
		CopyBack: *copyback, PrefetchOBL: *prefetch,
	}
	if cfg.Replacement, err = parseRepl(*repl); err != nil {
		fatal(err)
	}
	if cfg.Fetch, err = parseFetch(*fetch); err != nil {
		fatal(err)
	}

	refs, err := loadRefs(*tracePath, *workload, *n)
	if err != nil {
		fatal(err)
	}

	if *subs != "" {
		if err := sweepSubBlocks(cfg, refs, *subs); err != nil {
			fatal(err)
		}
		return
	}

	sim, err := subcache.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := sim.Run(subcache.NewSliceSource(refs)); err != nil {
		fatal(err)
	}
	st := sim.Stats()
	if *jsonOut {
		if err := emitJSON(cfg, sim); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("cache:          %v\n", cfg)
	fmt.Printf("gross size:     %.0f bytes (net %d)\n", cfg.GrossSize(), cfg.NetSize)
	fmt.Printf("accesses:       %d (ifetch %d, read %d; writes excluded: %d)\n",
		st.Accesses, st.IFetches, st.Reads, st.WriteAccesses)
	fmt.Printf("misses:         %d (block %d, sub-block %d)\n",
		st.Misses, st.BlockMisses, st.SubBlockMisses)
	fmt.Printf("miss ratio:     %.4f\n", st.MissRatio())
	fmt.Printf("traffic ratio:  %.4f (%d words fetched)\n", st.TrafficRatio(), st.WordsFetched)
	fmt.Printf("nibble traffic: %.4f (cost 1 + (w-1)/3)\n", sim.ScaledTrafficRatio(subcache.NibbleModel()))
	if st.RedundantLoads > 0 {
		fmt.Printf("redundant:      %d of %d sub-block loads (%.4f)\n",
			st.RedundantLoads, st.SubBlockFills, st.RedundantLoadFraction())
	}
	if st.ResidencySubBlocks > 0 && cfg.SubBlockSize < cfg.BlockSize {
		fmt.Printf("sub-block use:  %.2f of each block touched while resident\n", st.SubBlockUtilization())
	}
	if *warm {
		fmt.Printf("warm-up:        %d accesses, %d misses (not counted)\n",
			st.WarmupAccesses, st.WarmupMisses)
	}
	if st.WriteAccesses > 0 {
		fmt.Printf("store traffic:  %.3f words/store (%d write-through, %d write-back)\n",
			st.WriteTrafficPerStore(), st.WriteThroughWords, st.WriteBackWords)
	}
	if st.PrefetchFills > 0 {
		fmt.Printf("prefetch:       %d fills, %.2f used, %.2f evicted unused\n",
			st.PrefetchFills,
			float64(st.PrefetchUsed)/float64(st.PrefetchFills),
			float64(st.PrefetchEvictedUnused)/float64(st.PrefetchFills))
	}
}

// loadRefs materialises the input references from a file or workload.
func loadRefs(tracePath, workload string, n int) ([]subcache.Ref, error) {
	switch {
	case tracePath != "":
		tf, err := subcache.OpenTraceFile(tracePath, subcache.FormatAuto)
		if err != nil {
			return nil, err
		}
		defer tf.Close()
		var refs []subcache.Ref
		src := subcache.Limit(tf, n)
		for {
			r, err := src.Next()
			if err == subcache.EOF {
				return refs, nil
			}
			if err != nil {
				// One attributed line: file, then the reader's record
				// position (line or byte offset) and cause.
				return nil, fmt.Errorf("%s: %w", tracePath, err)
			}
			refs = append(refs, r)
		}
	case workload != "":
		return subcache.GenerateWorkload(workload, n)
	default:
		return nil, fmt.Errorf("specify -trace or -workload")
	}
}

// sweepSubBlocks replays the trace at each requested sub-block size and
// prints the miss/traffic tradeoff table (the paper's operating-point
// argument, CLI edition).
func sweepSubBlocks(base subcache.Config, refs []subcache.Ref, subs string) error {
	fmt.Printf("%-9s %-8s %-9s %-9s %s\n", "sub", "miss", "traffic", "nibble", "gross")
	for _, field := range strings.Split(subs, ",") {
		sub, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad sub-block size %q: %v", field, err)
		}
		cfg := base
		cfg.SubBlockSize = sub
		sim, err := subcache.New(cfg)
		if err != nil {
			return err
		}
		if err := sim.Run(subcache.NewSliceSource(refs)); err != nil {
			return err
		}
		fmt.Printf("%-9d %-8.4f %-9.4f %-9.4f %.0f\n",
			sub, sim.MissRatio(), sim.TrafficRatio(),
			sim.ScaledTrafficRatio(subcache.NibbleModel()), cfg.GrossSize())
	}
	return nil
}

// jsonResult is the machine-readable report shape.
type jsonResult struct {
	Config        subcache.Config `json:"config"`
	GrossSize     float64         `json:"grossSize"`
	MissRatio     float64         `json:"missRatio"`
	TrafficRatio  float64         `json:"trafficRatio"`
	NibbleTraffic float64         `json:"nibbleTrafficRatio"`
	Stats         *subcache.Stats `json:"stats"`
}

func emitJSON(cfg subcache.Config, sim *subcache.Simulator) error {
	out := jsonResult{
		Config:        cfg,
		GrossSize:     cfg.GrossSize(),
		MissRatio:     sim.MissRatio(),
		TrafficRatio:  sim.TrafficRatio(),
		NibbleTraffic: sim.ScaledTrafficRatio(subcache.NibbleModel()),
		Stats:         sim.Stats(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func parseRepl(s string) (subcache.Replacement, error) {
	switch strings.ToLower(s) {
	case "lru":
		return subcache.LRU, nil
	case "fifo":
		return subcache.FIFO, nil
	case "random", "rand":
		return subcache.Random, nil
	}
	return 0, fmt.Errorf("unknown replacement %q", s)
}

func parseFetch(s string) (subcache.Fetch, error) {
	switch strings.ToLower(s) {
	case "demand", "":
		return subcache.DemandSubBlock, nil
	case "lf", "load-forward":
		return subcache.LoadForward, nil
	case "lfopt":
		return subcache.LoadForwardOptimized, nil
	case "block", "whole-block":
		return subcache.WholeBlock, nil
	}
	return 0, fmt.Errorf("unknown fetch policy %q", s)
}

// sess is the live observability session, closed by fatal so profiles
// survive failure exits.
var sess *telemetry.Session

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachesim:", err)
	if sess != nil {
		sess.Close()
	}
	os.Exit(1)
}
