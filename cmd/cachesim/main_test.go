package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subcache"
)

func TestParseRepl(t *testing.T) {
	cases := []struct {
		in   string
		want subcache.Replacement
		ok   bool
	}{
		{"lru", subcache.LRU, true},
		{"LRU", subcache.LRU, true},
		{"fifo", subcache.FIFO, true},
		{"random", subcache.Random, true},
		{"rand", subcache.Random, true},
		{"plru", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseRepl(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseRepl(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseRepl(%q) accepted", c.in)
		}
	}
}

func TestParseFetch(t *testing.T) {
	cases := []struct {
		in   string
		want subcache.Fetch
		ok   bool
	}{
		{"demand", subcache.DemandSubBlock, true},
		{"", subcache.DemandSubBlock, true},
		{"lf", subcache.LoadForward, true},
		{"load-forward", subcache.LoadForward, true},
		{"lfopt", subcache.LoadForwardOptimized, true},
		{"block", subcache.WholeBlock, true},
		{"whole-block", subcache.WholeBlock, true},
		{"nextline", 0, false},
	}
	for _, c := range cases {
		got, err := parseFetch(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseFetch(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseFetch(%q) accepted", c.in)
		}
	}
}

// TestLoadRefsAttributesTraceErrors: malformed or truncated trace input
// must surface as one line naming the file, the record position and the
// cause -- the message the CLI prints before exiting non-zero.
func TestLoadRefsAttributesTraceErrors(t *testing.T) {
	dir := t.TempDir()

	textPath := filepath.Join(dir, "bad.din")
	if err := os.WriteFile(textPath, []byte("0 1000 2\nbanana\n0 1002 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadRefs(textPath, "", 100)
	if err == nil {
		t.Fatal("malformed text trace loaded cleanly")
	}
	for _, want := range []string{textPath, "line 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "\n") {
		t.Errorf("error spans multiple lines: %q", err)
	}

	binPath := filepath.Join(dir, "cut.strc")
	refs := []subcache.Ref{{Addr: 0x10, Kind: subcache.Read, Size: 2}, {Addr: 0x12, Kind: subcache.Read, Size: 2}}
	if _, err := subcache.WriteTraceFile(binPath, subcache.NewSliceSource(refs), subcache.FormatAuto); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = loadRefs(binPath, "", 100)
	if err == nil {
		t.Fatal("truncated binary trace loaded cleanly")
	}
	for _, want := range []string{binPath, "record 1", "offset 26"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
