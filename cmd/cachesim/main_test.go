package main

import (
	"testing"

	"subcache"
)

func TestParseRepl(t *testing.T) {
	cases := []struct {
		in   string
		want subcache.Replacement
		ok   bool
	}{
		{"lru", subcache.LRU, true},
		{"LRU", subcache.LRU, true},
		{"fifo", subcache.FIFO, true},
		{"random", subcache.Random, true},
		{"rand", subcache.Random, true},
		{"plru", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseRepl(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseRepl(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseRepl(%q) accepted", c.in)
		}
	}
}

func TestParseFetch(t *testing.T) {
	cases := []struct {
		in   string
		want subcache.Fetch
		ok   bool
	}{
		{"demand", subcache.DemandSubBlock, true},
		{"", subcache.DemandSubBlock, true},
		{"lf", subcache.LoadForward, true},
		{"load-forward", subcache.LoadForward, true},
		{"lfopt", subcache.LoadForwardOptimized, true},
		{"block", subcache.WholeBlock, true},
		{"whole-block", subcache.WholeBlock, true},
		{"nextline", 0, false},
	}
	for _, c := range cases {
		got, err := parseFetch(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseFetch(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseFetch(%q) accepted", c.in)
		}
	}
}
