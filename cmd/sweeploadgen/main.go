// Command sweeploadgen drives a running sweepd with a configurable
// open-loop request load -- steady rates, RPS ramps and bursts,
// modeled on the vhive/invitro trace synthesizer's Normal/Sweep/Burst
// trio -- and records throughput, cache-hit rate and latency
// percentiles into BENCH_service.json.
//
// Usage:
//
//	sweeploadgen [-addr HOST:PORT] [-mode steady|ramp|burst]
//	             [-duration DUR] [-start-rps F] [-target-rps F] [-slots N]
//	             [-burst-rps F] [-burst-every DUR] [-burst-len DUR]
//	             [-fresh F] [-tenants N] [-seed N]
//	             [-arch NAME] [-nets LIST] [-refs N]
//	             [-retries N] [-retry-backoff DUR]
//	             [-timeout DUR] [-poll DUR] [-out FILE]
//
// The generator fires sweep submissions at the scheduled rate: in
// "steady" mode a flat -start-rps; in "ramp" mode -slots equal time
// slices stepping linearly from -start-rps to -target-rps (the
// synthesizer's RPS sweep); in "burst" mode a -start-rps baseline with
// -burst-rps spikes of -burst-len every -burst-every (its burst mode).
// A -fresh fraction of requests carries a never-seen fingerprint
// (forcing a real simulation); the rest repeat a small pool of known
// requests, which must be answered by the fingerprint cache or by
// joining an identical in-flight sweep -- never by re-simulating.
//
// Every request is driven to a terminal state: submissions poll until
// done/failed, and a refused or unreachable submission (429 queue
// full, 503 draining/recovering, connection reset while the daemon
// restarts) is retried up to -retries times with capped exponential
// backoff plus jitter starting at -retry-backoff, so a well-behaved
// client rides out admission pressure and daemon restarts instead of
// giving up.  The record counts completions, cache hits, dedup joins,
// fresh simulations, submit retries (retries_total), admission
// rejections that survived every retry, failures, losses (no terminal
// state before -timeout) and duplicate re-simulations (a repeated
// fingerprint admitted more than once).
// The exit status is non-zero if any request was lost, any duplicate
// re-simulated, or nothing completed -- so CI can assert the service
// contract by just running this harness.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"subcache/internal/service"
	"subcache/internal/telemetry"
)

type latencyStats struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type benchRecord struct {
	Bench           string  `json:"bench"`
	Mode            string  `json:"mode"`
	DurationSeconds float64 `json:"duration_seconds"`
	StartRPS        float64 `json:"start_rps"`
	TargetRPS       float64 `json:"target_rps,omitempty"`
	BurstRPS        float64 `json:"burst_rps,omitempty"`
	FreshFraction   float64 `json:"fresh_fraction"`
	Tenants         int     `json:"tenants"`
	Refs            int     `json:"refs_per_workload"`

	Requests         int `json:"requests"`
	Completed        int `json:"completed"`
	CacheHits        int `json:"cache_hits"`
	DedupJoins       int `json:"dedup_joins"`
	FreshSimulations int `json:"fresh_simulations"`
	Rejected         int `json:"rejected"`
	Failed           int `json:"failed"`
	// Lost counts accepted requests that never reached a terminal
	// state before the harness timeout; the service contract is 0.
	Lost int `json:"lost"`
	// DuplicateResimulations counts repeat-fingerprint submissions the
	// server admitted as fresh simulations instead of serving from
	// cache or dedup; the service contract is 0.
	DuplicateResimulations int `json:"duplicate_resimulations"`
	// RetriesTotal counts submit retries across all requests: each one
	// is a 429/503 refusal or transport failure absorbed by backoff
	// instead of surfacing as a rejection.
	RetriesTotal int `json:"retries_total"`

	CacheHitRate  float64      `json:"cache_hit_rate"`
	ThroughputRPS float64      `json:"throughput_rps"`
	LatencyMS     latencyStats `json:"latency_ms"`
	// QueueWaitMS and ExecutionMS break the end-to-end latency into its
	// server-side components, read from sweepd's /v1/stats histograms
	// (absent when the server predates them or saw no jobs).
	QueueWaitMS *latencyStats `json:"queue_wait_ms,omitempty"`
	ExecutionMS *latencyStats `json:"execution_ms,omitempty"`

	Server json.RawMessage `json:"server_stats,omitempty"`
}

// outcome classifies one finished request.
type outcome struct {
	latency  time.Duration
	fp       string
	retries  int
	cached   bool
	deduped  bool
	admitted bool
	rejected bool
	failed   bool
	lost     bool
}

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "sweepd address (host:port)")
		mode       = flag.String("mode", "ramp", "load shape: steady, ramp or burst")
		duration   = flag.Duration("duration", 10*time.Second, "generation window")
		startRPS   = flag.Float64("start-rps", 4, "starting (or baseline) requests per second")
		targetRPS  = flag.Float64("target-rps", 16, "final RPS of the ramp")
		slots      = flag.Int("slots", 4, "ramp slots (equal time slices start->target)")
		burstRPS   = flag.Float64("burst-rps", 40, "burst-mode spike RPS")
		burstEvery = flag.Duration("burst-every", 3*time.Second, "burst period")
		burstLen   = flag.Duration("burst-len", 500*time.Millisecond, "burst length")
		fresh      = flag.Float64("fresh", 0.25, "fraction of requests with a never-seen fingerprint")
		tenants    = flag.Int("tenants", 2, "distinct tenant names to spread requests over")
		seed       = flag.Int64("seed", 1, "deterministic request-mix seed")
		arch       = flag.String("arch", "Z8000", "architecture suite for the generated sweeps")
		nets       = flag.String("nets", "64,256", "comma-separated net sizes for the generated sweeps")
		refs       = flag.Int("refs", 20000, "base references per workload")
		retries    = flag.Int("retries", 5, "max submit retries on 429/503 or transport failure")
		backoff    = flag.Duration("retry-backoff", 100*time.Millisecond, "base submit-retry backoff (doubled per attempt, jittered, capped at 2s)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request completion deadline")
		poll       = flag.Duration("poll", 50*time.Millisecond, "status poll interval")
		out        = flag.String("out", "BENCH_service.json", "output file")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		telemetry.PrintVersion("sweeploadgen")
		return
	}

	netSizes, err := parseInts(*nets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweeploadgen: bad -nets: %v\n", err)
		os.Exit(2)
	}
	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{Timeout: 15 * time.Second}
	if err := waitReady(client, base, 10*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "sweeploadgen:", err)
		os.Exit(1)
	}

	rate := func(elapsed time.Duration) float64 {
		switch *mode {
		case "steady":
			return *startRPS
		case "ramp":
			// Slot i of n runs at start + i*(target-start)/(n-1).
			n := *slots
			if n < 2 {
				return *targetRPS
			}
			i := int(float64(n) * elapsed.Seconds() / duration.Seconds())
			if i >= n {
				i = n - 1
			}
			return *startRPS + float64(i)*(*targetRPS-*startRPS)/float64(n-1)
		case "burst":
			if elapsed%*burstEvery < *burstLen {
				return *burstRPS
			}
			return *startRPS
		default:
			fmt.Fprintf(os.Stderr, "sweeploadgen: unknown -mode %q\n", *mode)
			os.Exit(2)
			return 0
		}
	}

	// The repeat pool: a small set of fixed fingerprints that exercise
	// the cache and singleflight paths.  Fresh requests bump refs past
	// the pool so every one is a new fingerprint.
	pool := make([]service.SweepRequest, 4)
	for i := range pool {
		pool[i] = service.SweepRequest{Arch: *arch, Nets: netSizes, Refs: *refs + i}
	}
	rng := rand.New(rand.NewSource(*seed))
	freshSeq := 0

	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
	)
	fire := func(req service.SweepRequest, isFresh bool) {
		defer wg.Done()
		o := drive(client, base, req, *timeout, *poll, *retries, *backoff)
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
		_ = isFresh
	}

	// Open-loop token-bucket dispatcher at 10ms granularity: arrivals
	// follow the schedule, independent of service latency.
	start := time.Now()
	tick := time.NewTicker(10 * time.Millisecond)
	tokens := 0.0
	last := start
	requests := 0
	for now := range tick.C {
		elapsed := now.Sub(start)
		if elapsed > *duration {
			break
		}
		tokens += rate(elapsed) * now.Sub(last).Seconds()
		last = now
		for tokens >= 1 {
			tokens--
			requests++
			var req service.SweepRequest
			isFresh := rng.Float64() < *fresh
			if isFresh {
				freshSeq++
				req = service.SweepRequest{Arch: *arch, Nets: netSizes, Refs: *refs + len(pool) + freshSeq}
			} else {
				req = pool[rng.Intn(len(pool))]
			}
			req.Tenant = "tenant-" + strconv.Itoa(rng.Intn(*tenants))
			wg.Add(1)
			go fire(req, isFresh)
		}
	}
	tick.Stop()
	wg.Wait()
	genSecs := time.Since(start).Seconds()

	rec := summarise(outcomes, *mode, genSecs, *startRPS, *targetRPS, *burstRPS, *fresh, *tenants, *refs)
	if b, err := fetch(client, base+"/v1/stats"); err == nil {
		rec.Server = b
		var sv struct {
			Telemetry *telemetry.Snapshot `json:"telemetry"`
		}
		if json.Unmarshal(b, &sv) == nil && sv.Telemetry != nil {
			rec.QueueWaitMS = histLatency(sv.Telemetry.Hist(telemetry.HistQueueWait))
			rec.ExecutionMS = histLatency(sv.Telemetry.Hist(telemetry.HistExecution))
		}
	}

	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweeploadgen:", err)
		os.Exit(1)
	}
	if err := telemetry.WriteFileAtomic(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sweeploadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("sweeploadgen: %d requests, %d completed (%.1f/s), %d cache hits, %d dedup joins, %d fresh, %d rejected, %d retries; p50=%.0fms p95=%.0fms p99=%.0fms\n",
		rec.Requests, rec.Completed, rec.ThroughputRPS, rec.CacheHits, rec.DedupJoins,
		rec.FreshSimulations, rec.Rejected, rec.RetriesTotal, rec.LatencyMS.P50, rec.LatencyMS.P95, rec.LatencyMS.P99)

	if rec.Lost > 0 || rec.DuplicateResimulations > 0 || rec.Completed == 0 {
		fmt.Fprintf(os.Stderr, "sweeploadgen: contract violated: lost=%d duplicate_resimulations=%d completed=%d\n",
			rec.Lost, rec.DuplicateResimulations, rec.Completed)
		os.Exit(1)
	}
}

// submitRetryCap bounds the exponential submit backoff: past it every
// retry waits roughly the cap, jitter aside.
const submitRetryCap = 2 * time.Second

// retryDelay is the capped exponential submit backoff with jitter:
// base<<attempt up to submitRetryCap, then uniformly jittered over
// [d/2, d] so synchronized clients spread out on retry.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt > 16 {
		attempt = 16
	}
	d := base << uint(attempt)
	if d <= 0 || d > submitRetryCap {
		d = submitRetryCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// submitOnce posts one submission and decodes the envelope.  A nil
// error means the server answered with valid JSON; the caller decides
// from the status code whether that answer is terminal.
func submitOnce(client *http.Client, base string, body []byte) (service.SubmitResponse, int, error) {
	var sub service.SubmitResponse
	resp, err := client.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return sub, 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return sub, 0, err
	}
	return sub, resp.StatusCode, nil
}

// drive submits one request and follows it to a terminal state.
// Refused (429/503) and transport-failed submissions are retried up to
// `retries` times with capped exponential backoff: admission pressure
// and daemon restarts are transient by contract, so only an exhausted
// retry budget counts as rejected/lost.
func drive(client *http.Client, base string, req service.SweepRequest, timeout, poll time.Duration, retries int, backoff time.Duration) outcome {
	body, _ := json.Marshal(req)
	t0 := time.Now()
	var o outcome
	var sub service.SubmitResponse
	var code int
	for attempt := 0; ; attempt++ {
		var err error
		sub, code, err = submitOnce(client, base, body)
		if err == nil && code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
			break
		}
		if attempt >= retries {
			if err != nil {
				o.lost = true
			} else {
				o.rejected = true
			}
			return o
		}
		o.retries++
		time.Sleep(retryDelay(backoff, attempt))
	}
	o.fp, o.cached, o.deduped = sub.ID, sub.Cached, sub.Deduped
	switch code {
	case http.StatusOK: // cache hit, result inline
		o.latency = time.Since(t0)
		return o
	case http.StatusAccepted:
		o.admitted = !sub.Deduped
	default:
		o.failed = true
		return o
	}
	deadline := t0.Add(timeout)
	for time.Now().Before(deadline) {
		time.Sleep(poll)
		resp, err := client.Get(base + "/v1/sweeps/" + sub.ID)
		if err != nil {
			continue
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch code {
		case http.StatusOK:
			o.latency = time.Since(t0)
			return o
		case http.StatusConflict:
			o.failed = true
			return o
		}
	}
	o.lost = true
	return o
}

// summarise folds outcomes into the benchmark record.
func summarise(outcomes []outcome, mode string, secs, startRPS, targetRPS, burstRPS, fresh float64, tenants, refs int) benchRecord {
	rec := benchRecord{
		Bench: "sweep_service", Mode: mode, DurationSeconds: round3(secs),
		StartRPS: startRPS, FreshFraction: fresh, Tenants: tenants, Refs: refs,
		Requests: len(outcomes),
	}
	if mode == "ramp" {
		rec.TargetRPS = targetRPS
	}
	if mode == "burst" {
		rec.BurstRPS = burstRPS
	}
	admitted := map[string]int{}
	var lat telemetry.Histogram
	for _, o := range outcomes {
		rec.RetriesTotal += o.retries
		switch {
		case o.rejected:
			rec.Rejected++
		case o.failed:
			rec.Failed++
		case o.lost:
			rec.Lost++
		default:
			rec.Completed++
			lat.ObserveDur(o.latency)
			switch {
			case o.cached:
				rec.CacheHits++
			case o.deduped:
				rec.DedupJoins++
			default:
				rec.FreshSimulations++
				admitted[o.fp]++
			}
		}
	}
	for _, n := range admitted {
		if n > 1 {
			rec.DuplicateResimulations += n - 1
		}
	}
	if rec.Completed > 0 {
		rec.CacheHitRate = round3(float64(rec.CacheHits+rec.DedupJoins) / float64(rec.Completed))
		rec.ThroughputRPS = round3(float64(rec.Completed) / secs)
		if ls := histLatency(lat.Snap()); ls != nil {
			rec.LatencyMS = *ls
		}
	}
	return rec
}

// histLatency folds a latency histogram snapshot into the record's
// millisecond stats; nil when the histogram is empty.
func histLatency(hs *telemetry.HistSnap) *latencyStats {
	if hs == nil || hs.Count == 0 {
		return nil
	}
	return &latencyStats{
		P50:  round3(hs.Quantile(0.50) / 1e6),
		P95:  round3(hs.Quantile(0.95) / 1e6),
		P99:  round3(hs.Quantile(0.99) / 1e6),
		Mean: round3(hs.MeanNanos() / 1e6),
		Max:  round3(float64(hs.MaxNanos) / 1e6),
	}
}

// waitReady polls the health endpoint until the daemon answers.
func waitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("sweepd at %s not ready after %v", base, timeout)
}

// fetch GETs a URL and returns its body.
func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }
