// Command traceinfo characterises a trace the way §3.3 and §4.2.5 of
// the paper characterise workloads: reference mix, footprint,
// sequential-run behaviour, and the LRU working-set curve (miss ratio
// versus capacity from a single Mattson stack-distance pass).
//
//	traceinfo -workload FGO1 -n 1000000
//	traceinfo -trace traces/ed.din -word 2
//
// The shared profiling flags -pprof, -cpuprofile and -memprofile
// (internal/telemetry) are available for performance work.
package main

import (
	"flag"
	"fmt"
	"os"

	"subcache"
	"subcache/internal/stackdist"
	"subcache/internal/synth"
	"subcache/internal/telemetry"
	"subcache/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (din text or .strc binary)")
		workload  = flag.String("workload", "", "synthetic workload name (alternative to -trace)")
		n         = flag.Int("n", 1000000, "max references")
		word      = flag.Int("word", 0, "data-path word size (default: workload's architecture, else 2)")
		block     = flag.Int("block", 8, "block size for the working-set curve")
	)
	tf := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	s, err := tf.Start("traceinfo", telemetry.Fingerprint("tool=traceinfo"))
	if err != nil {
		fatal(err)
	}
	sess = s
	defer sess.Close()

	refs, wordSize, err := load(*tracePath, *workload, *n, *word)
	if err != nil {
		fatal(err)
	}

	st, err := trace.Measure(trace.NewSliceSource(refs), wordSize)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("word accesses:   %d (ifetch %d, read %d, write %d)\n",
		st.Total, st.ByKind[trace.IFetch], st.ByKind[trace.Read], st.ByKind[trace.Write])
	fmt.Printf("word size:       %d bytes\n", wordSize)
	fmt.Printf("footprint:       %d bytes (%d unique words)\n", st.FootprintLen, st.UniqueWords)
	fmt.Printf("address range:   [%v, %v]\n", st.MinAddr, st.MaxAddr)

	_, meanRun, err := trace.RunLengths(trace.NewSliceSource(refs), wordSize)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mean ifetch run: %.2f words (forward-sequential)\n", meanRun)

	prof, err := stackdist.New(*block, 1, false)
	if err != nil {
		fatal(err)
	}
	sp := trace.NewSplitter(trace.NewSliceSource(refs), wordSize)
	if err := prof.Run(sp); err != nil {
		fatal(err)
	}
	fmt.Printf("\nLRU working-set curve (%d-byte blocks, fully associative, one Mattson pass):\n", *block)
	fmt.Printf("%10s  %s\n", "capacity", "miss ratio")
	for _, capBytes := range []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		fmt.Printf("%9dB  %.4f\n", capBytes, prof.MissRatio(capBytes / *block))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		blocks := prof.Percentile(q)
		if blocks < 0 {
			fmt.Printf("hit ratio %.0f%% unreachable (cold misses dominate)\n", 100*q)
			continue
		}
		fmt.Printf("capacity for %2.0f%% hits: %d bytes\n", 100*q, blocks**block)
	}
}

// sess is the live observability session, closed by fatal so profiles
// survive failure exits.
var sess *telemetry.Session

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	if sess != nil {
		sess.Close()
	}
	os.Exit(1)
}

// load returns the references and the effective word size.
func load(tracePath, workload string, n, word int) ([]subcache.Ref, int, error) {
	switch {
	case workload != "":
		prof, ok := synth.ProfileByName(workload)
		if !ok {
			return nil, 0, fmt.Errorf("unknown workload %q (have %v)", workload, synth.Names())
		}
		refs, err := subcache.GenerateWorkload(workload, n)
		if err != nil {
			return nil, 0, err
		}
		if word == 0 {
			word = prof.Arch.WordSize()
		}
		return refs, word, nil
	case tracePath != "":
		tf, err := subcache.OpenTraceFile(tracePath, subcache.FormatAuto)
		if err != nil {
			return nil, 0, err
		}
		defer tf.Close()
		var refs []subcache.Ref
		src := subcache.Limit(tf, n)
		for {
			r, err := src.Next()
			if err == subcache.EOF {
				break
			}
			if err != nil {
				// One attributed line: file, then the reader's record
				// position (line or byte offset) and cause.
				return nil, 0, fmt.Errorf("%s: %w", tracePath, err)
			}
			refs = append(refs, r)
		}
		if word == 0 {
			word = 2
		}
		return refs, word, nil
	default:
		return nil, 0, fmt.Errorf("specify -trace or -workload")
	}
}
