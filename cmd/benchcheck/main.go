// Command benchcheck gates the engine kernels against the committed
// performance baseline.
//
// It re-times the hit and miss kernel microbenchmarks for all three
// sweep engines (the same internal/kernelbench harness cmd/benchsweep
// uses), compares each figure against BENCH_baseline.json, and exits
// non-zero if any regresses by more than the tolerance -- 25% by
// default, overridable with -tolerance or the make variable TOLERANCE.
//
// Shared CI machines do not run at a fixed clock: this repository's own
// history shows the same binary timing 2x apart hours apart on one
// container.  Raw ns comparisons would fail on every slow day, so both
// the baseline and each fresh run record a core-frequency calibration
// (a fixed dependent-multiply chain, see kernelbench.Calibrate), and
// the fresh figures are judged against baseline * (fresh_cal/base_cal)
// * (1+tolerance): a kernel is flagged only when it got slower relative
// to the machine itself.
//
// Refresh the baseline after an intentional perf change with:
//
//	go run ./cmd/benchcheck -update
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"subcache/internal/kernelbench"
	"subcache/internal/sweep"
)

// engineBaseline is one engine's committed kernel figures.
type engineBaseline struct {
	Engine       string  `json:"engine"`
	KernelHitNs  float64 `json:"kernel_hit_ns"`
	KernelMissNs float64 `json:"kernel_miss_ns"`
}

// baseline is the BENCH_baseline.json schema.
type baseline struct {
	Description string           `json:"description"`
	Tolerance   float64          `json:"tolerance"`
	CalNs       float64          `json:"cal_ns"`
	Engines     []engineBaseline `json:"engines"`
}

// measure collects `repeat` kernel timings per engine and reduces them
// with pick (min for checking, median for the baseline: comparing a
// fresh minimum against a stored median leaves headroom for the co-
// tenant jitter that frequency calibration cannot see).
func measure(repeat int, pick func([]float64) float64) ([]engineBaseline, error) {
	engines := []sweep.Engine{sweep.Reference, sweep.MultiPass, sweep.StackDist}
	out := make([]engineBaseline, len(engines))
	for i, eng := range engines {
		hits := make([]float64, 0, repeat)
		misses := make([]float64, 0, repeat)
		for r := 0; r < repeat; r++ {
			hit, miss, err := kernelbench.Bench(eng)
			if err != nil {
				return nil, err
			}
			hits = append(hits, hit)
			misses = append(misses, miss)
		}
		out[i] = engineBaseline{Engine: eng.String(), KernelHitNs: pick(hits), KernelMissNs: pick(misses)}
	}
	return out, nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

func main() {
	path := flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or write with -update)")
	tol := flag.Float64("tolerance", -1, "allowed fractional regression (default: the baseline's own tolerance field, 0.25 as committed)")
	repeat := flag.Int("repeat", 3, "timings per engine; checking compares the minimum, -update stores the median")
	update := flag.Bool("update", false, "rewrite the baseline from this machine instead of checking")
	flag.Parse()

	pick := minOf
	if *update {
		pick = medianOf
		if *repeat < 5 {
			*repeat = 5 // a stable median needs more samples than a minimum
		}
	}
	cal := kernelbench.Calibrate()
	fresh, err := measure(*repeat, pick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}

	if *update {
		t := *tol
		if t < 0 {
			t = 0.25
		}
		b := baseline{
			Description: "Kernel microbench baseline for `make bench-check`: median-of-N hit/miss ns per engine plus the core-frequency calibration they were captured at. Fresh best-of-N runs are compared after rescaling by the calibration ratio; regenerate with `go run ./cmd/benchcheck -update` after intentional kernel changes.",
			Tolerance:   t,
			CalNs:       round2(cal),
			Engines:     fresh,
		}
		for i := range b.Engines {
			b.Engines[i].KernelHitNs = round2(b.Engines[i].KernelHitNs)
			b.Engines[i].KernelMissNs = round2(b.Engines[i].KernelMissNs)
		}
		buf, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*path, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: wrote %s (cal %.2f ns)\n", *path, cal)
		return
	}

	buf, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: parsing %s: %v\n", *path, err)
		os.Exit(2)
	}
	t := base.Tolerance
	if *tol >= 0 {
		t = *tol
	}
	scale := 1.0
	if base.CalNs > 0 && cal > 0 {
		scale = cal / base.CalNs
	}
	fmt.Printf("benchcheck: cal %.2f ns vs baseline %.2f ns (machine scale %.2fx), tolerance %.0f%%\n",
		cal, base.CalNs, scale, t*100)

	byName := map[string]engineBaseline{}
	for _, e := range fresh {
		byName[e.Engine] = e
	}
	failed := false
	for _, b := range base.Engines {
		f, ok := byName[b.Engine]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: engine %s in baseline but not measured\n", b.Engine)
			failed = true
			continue
		}
		for _, m := range []struct {
			name        string
			base, fresh float64
		}{
			{"hit", b.KernelHitNs, f.KernelHitNs},
			{"miss", b.KernelMissNs, f.KernelMissNs},
		} {
			allowed := m.base * scale * (1 + t)
			status := "ok"
			if m.fresh > allowed {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("  %-10s %-4s %7.1f ns  (baseline %.1f, allowed %.1f)  %s\n",
				b.Engine, m.name, m.fresh, m.base, allowed, status)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchcheck: kernel regression beyond tolerance; if intentional, refresh with `go run ./cmd/benchcheck -update`")
		os.Exit(1)
	}
	fmt.Println("benchcheck: all kernels within tolerance")
}
